"""Tests for DSSP (dynamic stale synchronous parallel)."""

import pytest

from repro.cluster import ClusterSpec, DistributedTrainer, TimingEngine, TrainingPlan
from repro.cluster import MembershipSchedule, WorkerJoin
from repro.faults import FaultSchedule, WorkerCrash
from repro.hardware import NoJitter, PersistentStraggler
from repro.nn.models import get_card
from repro.sync import DSSP


class RecordingDSSP(DSSP):
    """DSSP that records the bound in force at every epoch boundary."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.bound_history: list[tuple[int, int]] = []

    def on_epoch_end(self, ctx, epoch, train_loss, metric):
        super().on_epoch_end(ctx, epoch, train_loss, metric)
        self.bound_history.append((epoch, self.staleness))


def run(jitter, s_min=1, s_max=6, epochs=3, ipe=6, workers=4):
    spec = ClusterSpec(n_workers=workers, jitter=jitter)
    plan = TrainingPlan(n_epochs=epochs, iterations_per_epoch=ipe)
    engine = TimingEngine(
        get_card("resnet50-cifar10"), spec, total_iterations=epochs * ipe
    )
    sm = DSSP(s_min=s_min, s_max=s_max)
    res = DistributedTrainer(spec, plan, engine, sm).run()
    return res, sm


def test_dssp_validation():
    with pytest.raises(ValueError):
        DSSP(s_min=3, s_max=1)
    with pytest.raises(ValueError):
        DSSP(s_min=-1)
    with pytest.raises(ValueError):
        DSSP(window=0)


def test_dssp_homogeneous_tightens_to_smin():
    res, sm = run(NoJitter())
    assert sm.current_staleness == sm.s_min
    assert res.recorder.total_iterations == 3 * 6 * 4


def test_dssp_relaxes_under_heavy_straggler():
    res, sm = run(PersistentStraggler(slow_workers=[0], slow_factor=3.0))
    assert sm.current_staleness > sm.s_min


def test_dssp_bound_stays_in_range():
    for factor in (1.0, 1.5, 2.5, 5.0):
        jitter = PersistentStraggler(slow_workers=[0], slow_factor=factor)
        _res, sm = run(jitter)
        assert sm.s_min <= sm.current_staleness <= sm.s_max


def test_dssp_adapts_before_elastic_worker_joins():
    """Regression: a not-yet-joined worker's empty window froze adaptation.

    Worker 3 only joins at epoch 1; the bound must still relax during
    epoch 0 from the spread of the three workers actually running (the old
    code bailed out of ``_observe`` until *every* worker had samples, so
    the bound sat at ``s_min`` for the whole absence).
    """
    spec = ClusterSpec(
        n_workers=4,
        jitter=PersistentStraggler(slow_workers=[0], slow_factor=3.0),
        membership=MembershipSchedule((WorkerJoin(worker=3, epoch=1),)),
    )
    plan = TrainingPlan(n_epochs=3, iterations_per_epoch=6)
    engine = TimingEngine(get_card("resnet50-cifar10"), spec, total_iterations=18)
    sm = RecordingDSSP(s_min=1, s_max=6)
    DistributedTrainer(spec, plan, engine, sm).run()
    bounds = dict(sm.bound_history)
    assert bounds[0] > sm.s_min  # adapted while worker 3 was still absent


def test_dssp_retightens_after_permanent_crash():
    """Regression: a crashed worker's frozen window pinned the bound.

    The slow worker relaxes the bound toward ``s_max`` in epochs 0-1, then
    crashes permanently; with only the three symmetric survivors left the
    spread collapses to ~1 and the bound must come back down to ``s_min``
    (the old code kept averaging the dead worker's frozen durations and
    held ``s_max`` forever).
    """
    spec = ClusterSpec(
        n_workers=4,
        jitter=PersistentStraggler(slow_workers=[0], slow_factor=3.0),
        faults=FaultSchedule((WorkerCrash(worker=0, before_epoch=2),)),
    )
    plan = TrainingPlan(n_epochs=4, iterations_per_epoch=6)
    engine = TimingEngine(get_card("resnet50-cifar10"), spec, total_iterations=24)
    sm = RecordingDSSP(s_min=1, s_max=6)
    res = DistributedTrainer(spec, plan, engine, sm).run()
    bounds = dict(sm.bound_history)
    assert bounds[1] > sm.s_min  # relaxed while the straggler was alive
    assert sm.current_staleness == sm.s_min  # retightened after the crash
    # Survivors actually finished the run (alive-aware floor: no deadlock
    # on the dead worker's frozen progress).
    survivors = {r.worker for r in res.recorder.iterations if r.iteration >= 18}
    assert survivors == {1, 2, 3}


def test_dssp_straggler_throughput_beats_tight_ssp():
    """DSSP's relaxed bound lets healthy workers run ahead of a persistent
    straggler, beating a tight fixed-s SSP. (Only observable in the
    compute-bound regime — a fast network — where the staleness bound is
    what blocks workers; on a saturated link everyone queues anyway.)"""
    from repro.netsim.links import LinkSpec
    from repro.sync import SSP

    jitter = PersistentStraggler(slow_workers=[0], slow_factor=3.0)
    fast_link = LinkSpec(bandwidth=12.5e9)  # 100 GbE: comm negligible

    def healthy_thr(sync):
        spec = ClusterSpec(n_workers=4, jitter=jitter, link=fast_link)
        plan = TrainingPlan(n_epochs=3, iterations_per_epoch=6)
        engine = TimingEngine(get_card("resnet50-cifar10"), spec, total_iterations=18)
        res = DistributedTrainer(spec, plan, engine, sync).run()
        # With a fixed iteration budget the straggler bounds *total* wall
        # time either way; the bound's benefit shows in how fast the
        # healthy workers progress.
        healthy = [r for r in res.recorder.iterations if r.worker != 0]
        span = max(r.start_time + r.compute_time + r.sync_time for r in healthy)
        return sum(r.samples for r in healthy) / span

    assert healthy_thr(DSSP(s_min=1, s_max=8)) > 1.1 * healthy_thr(SSP(staleness=1))
