"""Elastic membership: worker join/leave at epoch boundaries, with the OSP
ICS budget (Eq. 5 U_max) re-derived for the new cluster size."""

import pytest

from repro.cluster.spec import (
    ClusterSpec,
    MembershipSchedule,
    WorkerJoin,
    WorkerLeave,
)
from repro.core import OSP
from repro.core.tuning import ics_upper_bound
from repro.faults.schedule import FaultSchedule, WorkerCrash
from repro.harness.workloads import WorkloadConfig, timing_trainer
from repro.sync import BSP, ShardedBSP


def run_elastic(membership, sync=None, n_workers=4, n_epochs=6):
    cfg = WorkloadConfig(
        "resnet50-cifar10",
        n_workers=n_workers,
        n_epochs=n_epochs,
        iterations_per_epoch=3,
        membership=membership,
    )
    sync = sync or OSP()
    trainer = timing_trainer(cfg, sync)
    return trainer, sync, trainer.run()


def test_join_and_leave_change_alive_set_and_counters():
    m = MembershipSchedule(
        (WorkerJoin(worker=3, epoch=2), WorkerLeave(worker=0, epoch=4))
    )
    trainer, _sync, res = run_elastic(m)
    assert sorted(res.context.alive_workers) == [1, 2, 3]
    assert res.recorder.counter("elastic.worker_join") == 1
    assert res.recorder.counter("elastic.worker_leave") == 1
    # The joiner trained epochs 2..5, the leaver epochs 0..3; everyone else
    # trained all 6; 3 iterations per epoch each.
    by_worker = {}
    for rec in res.recorder.iterations:
        by_worker[rec.worker] = by_worker.get(rec.worker, 0) + 1
    assert by_worker == {0: 12, 1: 18, 2: 18, 3: 12}


def test_u_max_recomputed_for_new_cluster_size():
    m = MembershipSchedule((WorkerLeave(worker=0, epoch=3),))
    trainer, sync, res = run_elastic(m)
    assert sorted(res.context.alive_workers) == [1, 2, 3]
    spec, engine = trainer.spec, trainer.engine
    route_loss = 1.0 - (1.0 - spec.link.loss_rate) ** 2
    expected = ics_upper_bound(
        bandwidth=spec.link.bandwidth,
        loss_rate=route_loss,
        compute_time=engine.base_compute_time(spec),
        n_workers=3,  # Eq. 5: N is the post-leave alive count
        model_bytes=engine.model_bytes,
        max_model_fraction=sync.max_model_fraction,
    )
    assert sync._tuner.u_max == pytest.approx(expected)


def test_membership_changes_visible_in_trace():
    m = MembershipSchedule((WorkerJoin(worker=3, epoch=2),))
    cfg = WorkloadConfig(
        "resnet50-cifar10",
        n_workers=4,
        n_epochs=4,
        iterations_per_epoch=3,
        membership=m,
    )
    trainer = timing_trainer(cfg, OSP())
    tracer = trainer.enable_tracing()
    trainer.run()
    names = [inst.name for inst in tracer.instants]
    assert "elastic.worker_join" in names
    # the U_max gauge is re-emitted when the membership hook fires
    assert len(tracer.counters["osp.u_max"]) >= 2


def test_sharded_bsp_supports_elastic_leave():
    m = MembershipSchedule((WorkerLeave(worker=0, epoch=2),))
    _trainer, _sync, res = run_elastic(m, sync=ShardedBSP(), n_epochs=4)
    assert sorted(res.context.alive_workers) == [1, 2, 3]
    assert res.recorder.counter("elastic.worker_leave") == 1


def test_non_elastic_model_refuses_membership():
    m = MembershipSchedule((WorkerLeave(worker=0, epoch=2),))
    cfg = WorkloadConfig(
        "resnet50-cifar10", n_workers=4, n_epochs=4,
        iterations_per_epoch=3, membership=m,
    )
    with pytest.raises(ValueError, match="elastic"):
        timing_trainer(cfg, BSP())


def test_membership_schedule_validation():
    with pytest.raises(ValueError, match="epoch boundaries"):
        WorkerJoin(worker=0, epoch=0)
    with pytest.raises(ValueError):
        MembershipSchedule((WorkerJoin(worker=1, epoch=2), WorkerJoin(worker=1, epoch=3)))
    with pytest.raises(ValueError, match="leaves"):
        MembershipSchedule((WorkerJoin(worker=1, epoch=3), WorkerLeave(worker=1, epoch=2)))


def test_spec_membership_validation():
    m = MembershipSchedule((WorkerJoin(worker=9, epoch=2),))
    with pytest.raises(ValueError):
        ClusterSpec(n_workers=4, membership=m)
    # a worker cannot both crash and have a membership event
    m2 = MembershipSchedule((WorkerLeave(worker=1, epoch=3),))
    faults = FaultSchedule((WorkerCrash(worker=1, before_epoch=2),))
    with pytest.raises(ValueError):
        ClusterSpec(n_workers=4, membership=m2, faults=faults)
    # every worker initially absent is rejected
    m3 = MembershipSchedule(
        tuple(WorkerJoin(worker=w, epoch=1) for w in range(2))
    )
    with pytest.raises(ValueError, match="present at epoch 0"):
        ClusterSpec(n_workers=2, membership=m3)
