"""Fault-tolerance tests: the PS keeps training when a worker dies (§1's
motivation for PS over Ring-AllReduce)."""

import numpy as np
import pytest

from repro.cluster import ClusterSpec, DistributedTrainer, NumericEngine, TimingEngine, TrainingPlan
from repro.data import make_image_classification, train_test_split
from repro.hardware import NoJitter
from repro.nn.models import MLP, get_card
from repro.nn.models.registry import ModelCard
from repro.sync import ASP, R2SP, SSP


def make_trainer(sync, workers=4, epochs=4, ipe=4):
    spec = ClusterSpec(n_workers=workers, jitter=NoJitter())
    plan = TrainingPlan(n_epochs=epochs, iterations_per_epoch=ipe)
    engine = TimingEngine(get_card("resnet50-cifar10"), spec, total_iterations=epochs * ipe)
    return DistributedTrainer(spec, plan, engine, sync)


def test_schedule_failure_validation():
    trainer = make_trainer(ASP())
    with pytest.raises(ValueError):
        trainer.ctx.schedule_failure(99, 1)
    with pytest.raises(ValueError):
        trainer.ctx.schedule_failure(0, 0)


def test_asp_survives_worker_crash():
    trainer = make_trainer(ASP(), workers=4, epochs=4, ipe=4)
    trainer.ctx.schedule_failure(2, before_epoch=2)
    res = trainer.run()
    # worker 2 did 2 epochs, the other three all 4.
    per_worker = {}
    for r in res.recorder.iterations:
        per_worker[r.worker] = per_worker.get(r.worker, 0) + 1
    assert per_worker[2] == 2 * 4
    assert all(per_worker[w] == 4 * 4 for w in (0, 1, 3))
    # every epoch still got evaluated (survivors complete the arrivals)
    assert len(res.recorder.epochs) == 4
    assert trainer.ctx.alive_workers == frozenset({0, 1, 3})


@pytest.mark.parametrize("sync_factory", [ASP, lambda: SSP(staleness=3), R2SP])
def test_barrier_free_models_survive_crash(sync_factory):
    trainer = make_trainer(sync_factory(), workers=3, epochs=3, ipe=3)
    trainer.ctx.schedule_failure(0, before_epoch=2)
    res = trainer.run()
    assert len(res.recorder.epochs) == 3


def test_crash_of_last_arrival_completes_pending_epoch():
    """If the crashed worker was the only one missing from an epoch's
    arrivals, retiring it must complete (evaluate) that epoch."""
    trainer = make_trainer(ASP(), workers=2, epochs=3, ipe=2)
    # Worker 1 is much slower: make worker 0 wait on worker 1's arrival.
    from repro.hardware import PersistentStraggler

    object.__setattr__(trainer.spec, "jitter", PersistentStraggler([1], 5.0))
    trainer.ctx.schedule_failure(1, before_epoch=1)
    res = trainer.run()
    assert len(res.recorder.epochs) == 3


def test_numeric_training_continues_after_crash():
    card = ModelCard(
        name="fault-mlp",
        family="resnet",
        dataset="synthetic",
        task="classification",
        paper_params=1_000_000,
        paper_flops_per_sample=1e8,
        paper_layers=4,
        batch_size=16,
        metric="top1",
        mini_factory=lambda seed: MLP([3 * 8 * 8, 32, 4], seed=seed),
    )
    ds = make_image_classification(480, n_classes=4, image_size=8, noise=1.5, seed=0)
    train, test = train_test_split(ds, 0.25, seed=1)
    spec = ClusterSpec(n_workers=3, jitter=NoJitter())
    plan = TrainingPlan(n_epochs=5, lr=0.1, momentum=0.9)
    engine = NumericEngine(card, train, test, spec, batch_size=16, seed=0)
    trainer = DistributedTrainer(spec, plan, engine, ASP())
    trainer.ctx.schedule_failure(1, before_epoch=2)
    res = trainer.run()
    assert res.best_metric > 0.6  # survivors finish the job
