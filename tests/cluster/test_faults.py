"""Tier-1 coverage for the fault-injection layer.

Every end-to-end run here goes through :func:`run_with_budget`, which
drives the event loop step-by-step under a hard step budget — a hang
(the failure mode fault injection must *prevent*) fails the test instead
of wedging the suite.
"""

import json

import pytest

from repro.cluster import ClusterSpec, DistributedTrainer, TimingEngine, TrainingPlan
from repro.cluster.trainer import TrainingResult
from repro.core import OSP
from repro.faults import (
    BandwidthDip,
    FaultSchedule,
    LinkFlap,
    LossBurst,
    StragglerSlowdown,
    WorkerCrash,
    parse_faults,
)
from repro.hardware import NoJitter
from repro.netsim import LinkSpec, StarTopology
from repro.nn.models import get_card
from repro.simcore import Environment
from repro.simcore.resources import QuorumBarrier
from repro.sync import ASP, BSP

pytestmark = pytest.mark.tier1


def make_trainer(sync, workers=4, epochs=4, ipe=4, faults=None):
    spec = ClusterSpec(n_workers=workers, jitter=NoJitter(), faults=faults)
    plan = TrainingPlan(n_epochs=epochs, iterations_per_epoch=ipe)
    engine = TimingEngine(
        get_card("resnet50-cifar10"), spec, total_iterations=epochs * ipe
    )
    return DistributedTrainer(spec, plan, engine, sync)


def run_with_budget(trainer, max_steps=500_000) -> TrainingResult:
    """trainer.run(), but stepping manually: asserts the simulation neither
    deadlocks (empty queue with workers unfinished) nor runs away."""
    trainer.sync_model.setup(trainer.ctx)
    procs = [
        trainer.env.process(trainer.sync_model.worker_process(trainer.ctx, w))
        for w in range(trainer.spec.n_workers)
    ]
    done = trainer.env.all_of(procs)
    steps = 0
    while not done.processed:
        assert trainer.env.peek() != float("inf"), (
            "simulation deadlocked: event queue drained with worker "
            "processes still pending"
        )
        trainer.env.step()
        steps += 1
        assert steps < max_steps, f"step budget ({max_steps}) exceeded"
    for p in procs:
        assert p.ok, p.value
    return TrainingResult(
        sync_name=trainer.sync_model.name,
        recorder=trainer.recorder,
        wall_time=trainer.env.now,
        context=trainer.ctx,
        iteration_end_time=trainer.recorder.end_time(),
    )


# ---------------------------------------------------------------- QuorumBarrier
def test_quorum_barrier_trips_on_full_quorum():
    env = Environment()
    b = QuorumBarrier(env, 2)
    ev1, ev2 = b.wait(), b.wait()
    env.run()
    assert ev1.value == 0 and ev2.value == 0
    assert b.generation == 1 and b.last_trip_size == 2


def test_quorum_barrier_timeout_releases_degraded_quorum():
    env = Environment()
    degraded = []
    b = QuorumBarrier(env, 3, timeout=5.0, on_degraded=lambda g, n: degraded.append((g, n)))
    ev = b.wait()
    b.wait()
    env.run()
    assert env.now == pytest.approx(5.0)  # released at the deadline, not hung
    assert ev.value == 0
    assert degraded == [(0, 2)]
    assert b.last_trip_size == 2


def test_quorum_barrier_timeout_is_per_generation():
    """A full-quorum trip before the deadline must invalidate the timer."""
    env = Environment()
    degraded = []
    b = QuorumBarrier(env, 2, timeout=5.0, on_degraded=lambda g, n: degraded.append(g))
    b.wait()
    b.wait()  # trips immediately at t=0
    env.run()  # the armed t=5 timer fires but must be ignored
    assert b.generation == 1
    assert degraded == []


def test_quorum_barrier_set_parties_releases_waiters():
    env = Environment()
    b = QuorumBarrier(env, 3)
    ev = b.wait()
    b.wait()
    b.set_parties(2)  # a third party died: the two arrived form the quorum
    env.run()
    assert ev.value == 0
    assert b.generation == 1


def test_quorum_barrier_validation():
    env = Environment()
    with pytest.raises(ValueError):
        QuorumBarrier(env, 0)
    with pytest.raises(ValueError):
        QuorumBarrier(env, 2, timeout=0.0)
    with pytest.raises(ValueError):
        QuorumBarrier(env, 2).set_parties(0)


# ---------------------------------------------------------------- schedule
def test_fault_schedule_validation():
    with pytest.raises(ValueError):
        LossBurst(start=-1.0, duration=1.0)
    with pytest.raises(ValueError):
        BandwidthDip(start=0.0, duration=0.0)
    with pytest.raises(ValueError):
        BandwidthDip(start=0.0, duration=1.0, factor=0.0)
    with pytest.raises(ValueError):
        StragglerSlowdown(worker=0, start=0.0, duration=1.0, factor=0.5)
    with pytest.raises(ValueError):
        WorkerCrash(worker=0, before_epoch=0)
    with pytest.raises(ValueError):
        WorkerCrash(worker=0, before_epoch=2, restart_epoch=2)
    with pytest.raises(ValueError):  # two crashes for one worker
        FaultSchedule(
            (WorkerCrash(0, before_epoch=1), WorkerCrash(0, before_epoch=2))
        )
    assert not FaultSchedule()
    assert FaultSchedule((LinkFlap(start=0.0, duration=1.0),))


def test_parse_faults_inline_and_file(tmp_path):
    spec = json.dumps(
        [
            {"kind": "loss_burst", "start": 1.0, "duration": 2.0, "loss_rate": 0.3},
            {"kind": "bandwidth_dip", "start": 0.5, "duration": 1.0, "factor": 0.25,
             "nodes": [0, 2]},
            {"kind": "straggler", "worker": 1, "start": 0.0, "duration": 9.0,
             "factor": 3.0},
            {"kind": "worker_crash", "worker": 2, "before_epoch": 2,
             "restart_epoch": 4},
        ]
    )
    sched = parse_faults(spec)
    assert len(sched) == 4
    assert sched.network_events[1].nodes == (0, 2)
    assert sched.crash_events[0].restart_epoch == 4

    path = tmp_path / "faults.json"
    path.write_text(json.dumps({"events": json.loads(spec)}))
    assert parse_faults(path) == sched

    with pytest.raises(ValueError):
        parse_faults('[{"kind": "meteor_strike", "start": 0, "duration": 1}]')
    with pytest.raises(ValueError):
        parse_faults('[{"start": 0, "duration": 1}]')


def test_link_fault_state_composes_and_reverts():
    from repro.netsim.links import Link

    link = Link("up:0", LinkSpec(bandwidth=100.0, loss_rate=0.1))
    link.apply_fault(bandwidth_factor=0.5, extra_loss=0.2)
    link.apply_fault(extra_loss=0.5)  # nested burst
    assert link.bandwidth == pytest.approx(50.0)
    assert link.loss_rate == pytest.approx(1 - 0.9 * 0.8 * 0.5)
    link.clear_fault(extra_loss=0.5)
    link.clear_fault(bandwidth_factor=0.5, extra_loss=0.2)
    assert link.bandwidth == 100.0 and link.loss_rate == pytest.approx(0.1)


def test_route_loss_reflects_active_burst():
    topo = StarTopology(3, default_spec=LinkSpec(bandwidth=100.0, loss_rate=0.0))
    base = topo.route_loss(0, 2)
    topo.uplinks[0].apply_fault(extra_loss=0.5)
    assert topo.route_loss(0, 2) == pytest.approx(0.5)
    topo.uplinks[0].clear_fault(extra_loss=0.5)
    assert topo.route_loss(0, 2) == base


# ---------------------------------------------------------------- stragglers
def test_straggler_slowdown_raises_bst_tail():
    """A deterministic mid-run straggler makes the other BSP workers wait:
    the sync-time tail (p90) must rise while the median stays put."""
    base = run_with_budget(make_trainer(BSP(), workers=4, epochs=4, ipe=4))
    window = StragglerSlowdown(
        worker=1,
        start=0.25 * base.wall_time,
        duration=0.5 * base.wall_time,
        factor=4.0,
    )
    slow = run_with_budget(
        make_trainer(BSP(), workers=4, epochs=4, ipe=4,
                     faults=FaultSchedule((window,)))
    )
    assert slow.recorder.counter("faults.straggler") == 1
    assert slow.recorder.bst_percentile(90) > 1.5 * base.recorder.bst_percentile(90)
    assert slow.wall_time > base.wall_time


# ---------------------------------------------------------------- crashes
def test_osp_crash_completes_via_degraded_quorum():
    """A worker dying mid-run must shrink the RS quorum (and the matching
    ICS quorum) instead of deadlocking the barrier-based OSP."""
    faults = FaultSchedule((WorkerCrash(worker=2, before_epoch=2),))
    trainer = make_trainer(
        OSP(fixed_budget_fraction=0.3), workers=4, epochs=4, ipe=4, faults=faults
    )
    res = run_with_budget(trainer)
    per_worker = {}
    for r in res.recorder.iterations:
        per_worker[r.worker] = per_worker.get(r.worker, 0) + 1
    assert per_worker[2] == 2 * 4  # died after two epochs
    assert all(per_worker[w] == 4 * 4 for w in (0, 1, 3))
    assert len(res.recorder.epochs) == 4  # survivors completed every epoch
    assert res.recorder.counter("faults.worker_crash") == 1
    # every post-crash RS round aggregated a reduced quorum
    assert res.recorder.counter("osp.degraded_quorum") >= 2 * 4
    assert trainer.ctx.alive_workers == frozenset({0, 1, 3})


def test_worker_restart_rejoins_the_cluster():
    faults = FaultSchedule((WorkerCrash(worker=1, before_epoch=1, restart_epoch=3),))
    res = run_with_budget(
        make_trainer(ASP(), workers=3, epochs=5, ipe=2, faults=faults)
    )
    per_worker = {}
    for r in res.recorder.iterations:
        per_worker[r.worker] = per_worker.get(r.worker, 0) + 1
    # worker 1 ran epoch 0, sat out 1-2, ran 3-4.
    assert per_worker[1] == 3 * 2
    assert all(per_worker[w] == 5 * 2 for w in (0, 2))
    assert res.recorder.counter("faults.worker_crash") == 1
    assert res.recorder.counter("faults.worker_restart") == 1
    assert res.context.alive_workers == frozenset({0, 1, 2})


def test_osp_restart_regrows_the_quorum():
    """Crash/restart with a barrier-based model: the quorum shrinks, then
    grows back, and the rejoined worker participates in full rounds."""
    faults = FaultSchedule((WorkerCrash(worker=0, before_epoch=1, restart_epoch=2),))
    res = run_with_budget(
        make_trainer(
            OSP(fixed_budget_fraction=0.3), workers=3, epochs=4, ipe=3, faults=faults
        )
    )
    per_worker = {}
    for r in res.recorder.iterations:
        per_worker[r.worker] = per_worker.get(r.worker, 0) + 1
    assert per_worker[0] == 3 * 3  # missed exactly epoch 1
    assert all(per_worker[w] == 4 * 3 for w in (1, 2))
    assert res.recorder.counter("faults.worker_restart") == 1
    assert res.context.alive_workers == frozenset({0, 1, 2})


# ---------------------------------------------------------------- §4.3 fallback
def test_blown_ics_deadlines_trigger_bsp_fallback_and_recovery():
    """A sustained fabric-wide bandwidth dip makes every ICS round blow its
    Eq. 5 deadline; after deadline_k consecutive misses OSP must pin the
    GIB all-important (BSP mode), and resume adaptive splitting afterwards."""
    base = run_with_budget(
        make_trainer(OSP(fixed_budget_fraction=0.3), workers=4, epochs=6, ipe=6)
    )
    assert base.recorder.counter("osp.deadline_miss") == 0  # healthy baseline
    assert base.recorder.counter("osp.bsp_fallback") == 0

    # factor 0.1 inflates the ~100 ms ICS drain past the ~540 ms compute
    # window (blown) while keeping RS rounds short enough that several
    # round closes land inside the dip.
    osp = OSP(fixed_budget_fraction=0.3, deadline_k=2, fallback_rounds=4)
    dip = BandwidthDip(
        start=0.3 * base.wall_time,
        duration=0.35 * base.wall_time,
        factor=0.1,
    )
    res = run_with_budget(
        make_trainer(osp, workers=4, epochs=6, ipe=6,
                     faults=FaultSchedule((dip,)))
    )
    assert res.recorder.counter("faults.bandwidth_dip") == 1
    assert res.recorder.counter("osp.deadline_miss") >= 2
    assert res.recorder.counter("osp.bsp_fallback") >= 1
    assert res.recorder.counter("osp.bsp_fallback_exit") >= 1
    assert not osp.in_bsp_fallback  # recovered by the end of the run
    assert osp.current_gib.n_important < len(osp.current_gib.layers)  # adaptive again
    assert res.wall_time > base.wall_time  # the dip cost real time


# ---------------------------------------------------------------- CLI
def test_cli_faults_flag(capsys, tmp_path):
    from repro.cli import main

    spec = [
        {"kind": "worker_crash", "worker": 1, "before_epoch": 2},
        {"kind": "loss_burst", "start": 0.5, "duration": 2.0, "loss_rate": 0.4},
    ]
    path = tmp_path / "faults.json"
    path.write_text(json.dumps(spec))
    for faults_arg in (json.dumps(spec), str(path)):
        code = main(
            [
                "run", "--workload", "resnet50-cifar10", "--sync", "osp",
                "--mode", "timing", "--workers", "3", "--epochs", "3",
                "--iterations", "2", "--json", "--faults", faults_arg,
            ]
        )
        assert code == 0
        out = json.loads(capsys.readouterr().out)
        assert out["counters"]["faults.worker_crash"] == 1
        assert out["counters"]["faults.loss_burst"] == 1
        assert out["wall_time"] >= out["iteration_end_time"]


# ---------------------------------------------------------------- wall time
def test_wall_time_includes_ics_drain():
    res = run_with_budget(
        make_trainer(OSP(fixed_budget_fraction=0.5), workers=4, epochs=3, ipe=4)
    )
    assert res.iteration_end_time == res.recorder.end_time()
    # the final ICS pushes/pulls drain after the last recorded iteration
    assert res.wall_time > res.iteration_end_time
    # throughput stays defined against iteration time (comparability)
    assert res.throughput == res.recorder.throughput()
