"""Tests for §6.1 multi-PS sharded synchronization."""

import numpy as np
import pytest

from repro.cluster import ClusterSpec, DistributedTrainer, TimingEngine, TrainingPlan
from repro.data import make_image_classification, train_test_split
from repro.cluster.engines import NumericEngine
from repro.hardware import NoJitter
from repro.nn.models import MLP, get_card
from repro.nn.models.registry import ModelCard
from repro.sync import BSP, ShardedBSP


def run_timing(n_ps, workers=8, ipe=4):
    spec = ClusterSpec(n_workers=workers, jitter=NoJitter(), n_ps=n_ps)
    plan = TrainingPlan(n_epochs=1, iterations_per_epoch=ipe)
    eng = TimingEngine(get_card("resnet50-cifar10"), spec, total_iterations=ipe)
    sm = ShardedBSP()
    res = DistributedTrainer(spec, plan, eng, sm).run()
    return res, sm


def test_spec_ps_nodes_layout():
    spec = ClusterSpec(n_workers=4, n_ps=3)
    assert spec.n_nodes == 7
    assert spec.ps_nodes == (4, 5, 6)
    assert spec.ps_node == 4


def test_spec_validation():
    with pytest.raises(ValueError):
        ClusterSpec(n_workers=2, n_ps=0)
    with pytest.raises(ValueError):
        ClusterSpec(n_workers=2, n_ps=2, colocated_ps=True)


def test_sharded_bsp_single_ps_equals_bsp():
    res_sharded, _sm = run_timing(n_ps=1)
    spec = ClusterSpec(n_workers=8, jitter=NoJitter(), n_ps=1)
    plan = TrainingPlan(n_epochs=1, iterations_per_epoch=4)
    eng = TimingEngine(get_card("resnet50-cifar10"), spec, total_iterations=4)
    res_bsp = DistributedTrainer(spec, plan, eng, BSP()).run()
    assert res_sharded.mean_bst == pytest.approx(res_bsp.mean_bst, rel=0.02)


def test_sharded_bsp_scales_with_ps_count():
    """§6.1: k PSes divide the sync time by ~k (balanced shards)."""
    bst = {}
    for n_ps in (1, 2, 4):
        res, _sm = run_timing(n_ps)
        bst[n_ps] = res.mean_bst
    assert bst[2] == pytest.approx(bst[1] / 2, rel=0.1)
    assert bst[4] == pytest.approx(bst[1] / 4, rel=0.15)


def test_sharded_bsp_matches_plan_prediction():
    res, sm = run_timing(n_ps=2)
    predicted = sm.plan.predicted_bst(8, ClusterSpec().link.bandwidth)
    # Prediction ignores latency + PS aggregation service: measured is a
    # little above but within 20%.
    assert predicted <= res.mean_bst <= 1.2 * predicted


def test_sharded_bsp_numeric_matches_plain_bsp_params():
    """Sharding is transport-only: the numeric result equals plain BSP."""
    card = ModelCard(
        name="tiny",
        family="resnet",
        dataset="synthetic",
        task="classification",
        paper_params=1_000_000,
        paper_flops_per_sample=1e8,
        paper_layers=4,
        batch_size=8,
        metric="top1",
        mini_factory=lambda seed: MLP([3 * 4 * 4, 16, 3], seed=seed),
    )
    ds = make_image_classification(160, n_classes=3, image_size=4, seed=0)
    train, test = train_test_split(ds, 0.25, seed=0)

    def final_params(sync, n_ps):
        spec = ClusterSpec(n_workers=2, jitter=NoJitter(), n_ps=n_ps)
        plan = TrainingPlan(n_epochs=2, lr=0.1, momentum=0.9)
        eng = NumericEngine(card, train, test, spec, batch_size=10, seed=0)
        trainer = DistributedTrainer(spec, plan, eng, sync)
        trainer.run()
        return trainer.ps.snapshot()

    a = final_params(BSP(), 1)
    b = final_params(ShardedBSP(), 3)
    for name in a:
        np.testing.assert_allclose(a[name], b[name], atol=1e-12)


def test_sharded_bsp_uses_all_ps_nodes():
    spec = ClusterSpec(n_workers=4, jitter=NoJitter(), n_ps=3)
    plan = TrainingPlan(n_epochs=1, iterations_per_epoch=2)
    eng = TimingEngine(get_card("resnet50-cifar10"), spec, total_iterations=2)
    trainer = DistributedTrainer(spec, plan, eng, ShardedBSP())
    trainer.run()
    destinations = {
        r.dst
        for r in trainer.network.records
        if isinstance(r.tag, tuple) and r.tag[0] == "sbsp-push"
    }
    assert destinations == set(spec.ps_nodes)
