"""ShardedBSP under fire: fault injection and elastic membership.

The multi-PS quorum barrier and the alive-set apply threshold are the two
pieces that make ShardedBSP safe under churn; each scenario here targets
one of them. Hangs are the failure mode (a dead worker stuck in a full
barrier), so the end-to-end runs go through a step-budget driver rather
than ``trainer.run()``.
"""

import pytest

from repro.cluster.spec import MembershipSchedule, WorkerJoin, WorkerLeave
from repro.faults.schedule import FaultSchedule, LinkFlap, WorkerCrash
from repro.harness.workloads import WorkloadConfig, timing_trainer
from repro.sync import ShardedBSP

pytestmark = pytest.mark.tier1


def _run(n_ps=2, n_workers=4, n_epochs=4, faults=None, membership=None,
         max_steps=500_000):
    cfg = WorkloadConfig(
        "resnet50-cifar10",
        n_workers=n_workers,
        n_epochs=n_epochs,
        iterations_per_epoch=3,
        n_ps=n_ps,
        faults=faults,
        membership=membership,
    )
    trainer = timing_trainer(cfg, ShardedBSP())
    # step manually under a budget: a barrier hang fails instead of wedging
    trainer.sync_model.setup(trainer.ctx)
    procs = [
        trainer.env.process(
            trainer.sync_model.worker_process(trainer.ctx, w)
        )
        for w in range(trainer.spec.n_workers)
    ]
    done = trainer.env.all_of(procs)
    steps = 0
    while not done.processed:
        assert trainer.env.peek() != float("inf"), (
            "ShardedBSP deadlocked: queue drained with workers pending"
        )
        trainer.env.step()
        steps += 1
        assert steps < max_steps, f"step budget ({max_steps}) exceeded"
    for p in procs:
        assert p.ok, p.value
    return trainer


def _iters_by_worker(trainer):
    by_worker = {}
    for rec in trainer.recorder.iterations:
        by_worker[rec.worker] = by_worker.get(rec.worker, 0) + 1
    return by_worker


def test_crash_does_not_wedge_quorum_barrier():
    faults = FaultSchedule((WorkerCrash(worker=0, before_epoch=2),))
    trainer = _run(faults=faults)
    assert sorted(trainer.ctx.alive_workers) == [1, 2, 3]
    # the survivors finished every epoch; the casualty stopped at 2
    assert _iters_by_worker(trainer) == {0: 6, 1: 12, 2: 12, 3: 12}


def test_crash_and_cold_restart_resyncs_all_shards():
    faults = FaultSchedule(
        (WorkerCrash(worker=1, before_epoch=2, restart_epoch=3),)
    )
    trainer = _run(faults=faults)
    # back in the alive set, and it sat out exactly one epoch
    assert sorted(trainer.ctx.alive_workers) == [0, 1, 2, 3]
    assert _iters_by_worker(trainer) == {0: 12, 1: 9, 2: 12, 3: 12}
    assert trainer.recorder.counter("faults.worker_restart") == 1


def test_link_flap_during_shard_push_stretches_not_hangs():
    clean = _run()
    clean_wall = clean.env.now
    # darken worker 0's links across a window that overlaps its shard
    # pushes mid-run; the fluid flows stall and then drain — no deadlock
    faults = FaultSchedule(
        (LinkFlap(start=clean_wall * 0.25, duration=clean_wall * 0.2,
                  nodes=(0,)),)
    )
    flapped = _run(faults=faults)
    assert flapped.env.now > clean_wall
    # BSP semantics survive: every worker still ran the full schedule
    assert _iters_by_worker(flapped) == {w: 12 for w in range(4)}
    # both PS shards saw every worker's pushes
    pushes = [
        r.tag for r in flapped.ctx.network.records
        if isinstance(r.tag, tuple) and r.tag[0] == "sbsp-push"
    ]
    for ps in range(2):
        assert sum(1 for t in pushes if t[3] == ps) == 4 * 12


def test_elastic_join_at_epoch_boundary_raises_apply_threshold():
    m = MembershipSchedule((WorkerJoin(worker=3, epoch=2),))
    trainer = _run(membership=m)
    assert sorted(trainer.ctx.alive_workers) == [0, 1, 2, 3]
    assert trainer.recorder.counter("elastic.worker_join") == 1
    # joiner trained epochs 2..3 only; the apply threshold tracked the
    # alive set, so the incumbents' first epochs applied at quorum 3
    assert _iters_by_worker(trainer) == {0: 12, 1: 12, 2: 12, 3: 6}


def test_elastic_join_then_leave_with_sharded_ps():
    m = MembershipSchedule(
        (WorkerJoin(worker=3, epoch=1), WorkerLeave(worker=0, epoch=3))
    )
    trainer = _run(membership=m)
    assert sorted(trainer.ctx.alive_workers) == [1, 2, 3]
    assert _iters_by_worker(trainer) == {0: 9, 1: 12, 2: 12, 3: 9}
    # shard plan is membership-independent: still n_ps shards, all used
    pulls = {
        r.tag[3] for r in trainer.ctx.network.records
        if isinstance(r.tag, tuple) and r.tag[0] == "sbsp-pull"
    }
    assert pulls == {0, 1}


def test_crash_with_sharded_ps_keeps_shard_fanout():
    # even with a casualty, every surviving iteration pushes to all shards
    faults = FaultSchedule((WorkerCrash(worker=2, before_epoch=3),))
    trainer = _run(n_ps=3, faults=faults)
    pushes = [
        r.tag for r in trainer.ctx.network.records
        if isinstance(r.tag, tuple) and r.tag[0] == "sbsp-push"
    ]
    total_iters = sum(_iters_by_worker(trainer).values())
    assert len(pushes) == 3 * total_iters
