"""Tests for multi-rack topologies and cross-rack training."""

import pytest

from repro.cluster import ClusterSpec, DistributedTrainer, TimingEngine, TrainingPlan
from repro.hardware import NoJitter
from repro.netsim import LinkSpec, make_multirack_topology
from repro.nn.models import get_card
from repro.sync import BSP
from repro.core import OSP


def test_multirack_validation():
    with pytest.raises(ValueError):
        make_multirack_topology(4, 0)
    with pytest.raises(ValueError):
        make_multirack_topology(1, 2)
    with pytest.raises(ValueError):
        make_multirack_topology(4, 2, oversubscription=0.5)


def test_same_rack_route_avoids_core():
    topo = make_multirack_topology(9, 2)
    # hosts 0 and 2 both sit in rack 0
    names = [l.name for l in topo.route(0, 2)]
    assert names == ["0->tor0", "tor0->2"]


def test_cross_rack_route_crosses_core():
    topo = make_multirack_topology(9, 2)
    # host 0 (rack 0) -> host 1 (rack 1)
    names = [l.name for l in topo.route(0, 1)]
    assert names == ["0->tor0", "tor0->core", "core->tor1", "tor1->1"]


def test_core_links_are_oversubscribed():
    spec = LinkSpec(bandwidth=100.0)
    topo = make_multirack_topology(8, 2, default_spec=spec, oversubscription=4.0)
    core_links = {l.name: l for l in topo.links if "core" in l.name}
    # 4 hosts per rack, oversub 4 -> core uplink = 100 * 4 / 4 = 100
    assert core_links["tor0->core"].bandwidth == pytest.approx(100.0)


def run_cross_rack(sync, oversubscription, n_workers=8, ipe=4):
    spec = ClusterSpec(n_workers=n_workers, jitter=NoJitter())
    topo = make_multirack_topology(
        spec.n_nodes, 2, default_spec=spec.link, oversubscription=oversubscription
    )
    plan = TrainingPlan(n_epochs=1, iterations_per_epoch=ipe)
    engine = TimingEngine(get_card("resnet50-cifar10"), spec, total_iterations=ipe)
    return DistributedTrainer(spec, plan, engine, sync, topology=topo).run()


def test_cross_rack_training_runs():
    res = run_cross_rack(BSP(), oversubscription=4.0)
    assert res.recorder.total_iterations == 32


def test_oversubscription_slows_bsp():
    """The PS sits in rack 0; rack-1 workers cross the oversubscribed core,
    so once the core's fair share drops below the PS-link share (at 9 nodes
    that crossover is oversubscription ≈ 8) BSP's sync time rises."""
    mild = run_cross_rack(BSP(), oversubscription=1.0)
    harsh = run_cross_rack(BSP(), oversubscription=32.0)
    assert harsh.mean_bst > 1.5 * mild.mean_bst


def test_osp_still_beats_bsp_across_racks():
    epochs, ipe = 10, 6
    def run(sync):
        spec = ClusterSpec(n_workers=8, jitter=NoJitter())
        topo = make_multirack_topology(
            spec.n_nodes, 2, default_spec=spec.link, oversubscription=4.0
        )
        plan = TrainingPlan(n_epochs=epochs, iterations_per_epoch=ipe)
        engine = TimingEngine(
            get_card("resnet50-cifar10"), spec, total_iterations=epochs * ipe
        )
        engine.tau = epochs * ipe / 6
        return DistributedTrainer(spec, plan, engine, sync, topology=topo).run()

    assert run(OSP()).throughput > 1.2 * run(BSP()).throughput
