"""Tests for non-IID sharding in the numeric engine."""

import numpy as np
import pytest

from repro.cluster import ClusterSpec, DistributedTrainer, NumericEngine, TrainingPlan
from repro.core import OSP
from repro.data import make_image_classification, train_test_split
from repro.hardware import NoJitter
from repro.nn.models import MLP
from repro.nn.models.registry import ModelCard
from repro.sync import BSP

CARD = ModelCard(
    name="noniid-mlp",
    family="resnet",
    dataset="synthetic",
    task="classification",
    paper_params=1_000_000,
    paper_flops_per_sample=1e8,
    paper_layers=4,
    batch_size=16,
    metric="top1",
    mini_factory=lambda seed: MLP([3 * 8 * 8, 32, 4], seed=seed),
)


@pytest.fixture(scope="module")
def data():
    ds = make_image_classification(480, n_classes=4, image_size=8, noise=1.5, seed=0)
    return train_test_split(ds, test_fraction=0.25, seed=1)


def make_engine(data, sharding, alpha=0.3, workers=3):
    train, test = data
    spec = ClusterSpec(n_workers=workers, jitter=NoJitter())
    return (
        NumericEngine(
            CARD,
            train,
            test,
            spec,
            batch_size=16,
            seed=0,
            sharding=sharding,
            dirichlet_alpha=alpha,
        ),
        spec,
    )


def test_unknown_sharding_rejected(data):
    with pytest.raises(ValueError):
        make_engine(data, "random")


def test_dirichlet_shards_skewed(data):
    eng, _spec = make_engine(data, "dirichlet", alpha=0.1)
    # At least one shard should be dominated by one class.
    max_frac = 0.0
    for loader in eng.loaders:
        targets = loader.dataset.targets
        counts = np.bincount(targets, minlength=4)
        max_frac = max(max_frac, counts.max() / counts.sum())
    assert max_frac > 0.6


def test_dirichlet_weights_match_shard_sizes(data):
    eng, _spec = make_engine(data, "dirichlet")
    ps = eng.make_ps(TrainingPlan())
    expected = np.asarray(eng.shard_sizes, dtype=float)
    expected /= expected.sum()
    assert np.allclose(ps.worker_weights, expected)


def test_training_runs_on_dirichlet_shards(data):
    train, test = data
    spec = ClusterSpec(n_workers=3, jitter=NoJitter())
    eng = NumericEngine(
        CARD, train, test, spec, batch_size=16, seed=0, sharding="dirichlet",
        dirichlet_alpha=0.3,
    )
    plan = TrainingPlan(n_epochs=3, lr=0.1, momentum=0.9)
    res = DistributedTrainer(spec, plan, eng, BSP()).run()
    assert res.best_metric > 0.5  # still learns despite skew


def test_osp_runs_on_dirichlet_shards(data):
    train, test = data
    spec = ClusterSpec(n_workers=3, jitter=NoJitter())
    eng = NumericEngine(
        CARD, train, test, spec, batch_size=16, seed=0, sharding="dirichlet",
        dirichlet_alpha=0.3,
    )
    plan = TrainingPlan(n_epochs=4, lr=0.1, momentum=0.9)
    res = DistributedTrainer(spec, plan, eng, OSP()).run()
    assert res.best_metric > 0.5
