"""Behavioural tests for OSP: 2-stage structure, Eq. 5 budget, degradation
(§4.3), co-location (§4.4)."""

import numpy as np
import pytest

from repro.cluster import (
    ClusterSpec,
    DistributedTrainer,
    TimingEngine,
    TrainingPlan,
)
from repro.core import OSP, ColocatedOSP
from repro.hardware import NoJitter
from repro.nn.models import get_card
from repro.sync import BSP


def build(sync_model, workers=4, epochs=4, ipe=4, card="resnet50-cifar10", **spec_kw):
    spec = ClusterSpec(n_workers=workers, jitter=NoJitter(), **spec_kw)
    plan = TrainingPlan(n_epochs=epochs, iterations_per_epoch=ipe)
    engine = TimingEngine(get_card(card), spec, total_iterations=epochs * ipe)
    return DistributedTrainer(spec, plan, engine, sync_model)


def test_osp_umax_matches_eq5():
    osp = OSP()
    trainer = build(osp)
    trainer.run()
    spec = trainer.spec
    engine = trainer.engine
    t_c = engine.base_compute_time(spec)
    route_loss = 1 - (1 - spec.link.loss_rate) ** 2
    expected = min(
        spec.link.bandwidth * t_c / (spec.n_workers * (1 + route_loss)),
        0.8 * engine.model_bytes,
    )
    assert osp.u_max == pytest.approx(expected)


def test_osp_budget_zero_in_first_epoch():
    osp = OSP()
    trainer = build(osp, epochs=1)
    trainer.run()
    # After the only epoch, Algorithm 1 set L and returned 0.
    assert osp._tuner.initial_loss is not None


def test_osp_budget_ramps_up():
    osp = OSP()
    budgets = []
    trainer = build(osp, epochs=6)
    trainer.ctx.epoch_end_hooks.append(
        lambda e, loss, m: budgets.append(osp.current_budget)
    )
    trainer.run()
    assert budgets[0] == 0.0
    assert budgets[-1] > 0.0
    assert budgets == sorted(budgets)  # monotone with falling loss


def test_osp_first_epoch_behaves_like_bsp():
    """Epoch 1 has S(G^u)=0: all gradients in RS ⇒ BST matches BSP."""
    res_osp = build(OSP(), epochs=1).run()
    res_bsp = build(BSP(), epochs=1).run()
    assert res_osp.mean_bst == pytest.approx(res_bsp.mean_bst, rel=0.02)


def test_osp_bst_drops_after_ramp():
    res = build(OSP(), epochs=8).run()
    first_epoch = [r.sync_time for r in res.recorder.iterations if r.iteration < 4]
    last_epoch = [r.sync_time for r in res.recorder.iterations if r.iteration >= 28]
    assert np.mean(last_epoch) < 0.6 * np.mean(first_epoch)


def test_osp_forced_bsp_equals_bsp_bst():
    res_forced = build(OSP(force="bsp"), epochs=3).run()
    res_bsp = build(BSP(), epochs=3).run()
    assert res_forced.mean_bst == pytest.approx(res_bsp.mean_bst, rel=0.02)
    assert res_forced.sync_name == "osp-forced-bsp"


def test_osp_forced_asp_has_near_zero_bst():
    """§4.3: everything in ICS ⇒ only the empty-RS barrier remains in the
    critical path (zero at NoJitter), comm fully overlapped."""
    res = build(OSP(force="asp"), epochs=3).run()
    res_bsp = build(BSP(), epochs=3).run()
    assert res.mean_bst < 0.25 * res_bsp.mean_bst
    assert res.throughput > 1.5 * res_bsp.throughput


def test_osp_ics_traffic_exists_and_is_tagged():
    trainer = build(OSP(), epochs=6)
    trainer.run()
    tags = {r.tag[0] for r in trainer.network.records if isinstance(r.tag, tuple)}
    assert {"rs-push", "rs-pull", "ics-push", "ics-pull", "gib"} <= tags


def test_osp_rs_plus_ics_bytes_equal_full_model():
    """OSP defers, never drops: per iteration the pushed bytes equal the
    full gradient size (conservation)."""
    trainer = build(OSP(), epochs=6, workers=2)
    trainer.run()
    model_bytes = trainer.engine.model_bytes
    per_iter = {}
    for r in trainer.network.records:
        if isinstance(r.tag, tuple) and r.tag[0] in ("rs-push", "ics-push"):
            key = (r.tag[1], r.tag[2])
            per_iter[key] = per_iter.get(key, 0.0) + r.size
    # every (worker, iteration) pushed exactly the full model
    for key, total in per_iter.items():
        assert total == pytest.approx(model_bytes, rel=1e-6), key


def test_osp_gib_stays_consistent_across_workers_per_iteration():
    """All workers must split one iteration with the same bitmap: their
    rs-push sizes are identical within an iteration."""
    trainer = build(OSP(), epochs=6, workers=4)
    trainer.run()
    sizes_by_iter = {}
    for r in trainer.network.records:
        if isinstance(r.tag, tuple) and r.tag[0] == "rs-push":
            sizes_by_iter.setdefault(r.tag[2], set()).add(round(r.size, 3))
    for it, sizes in sizes_by_iter.items():
        assert len(sizes) == 1, f"iteration {it} saw inconsistent GIBs"


def test_osp_gib_wire_bytes_small():
    trainer = build(OSP(), epochs=6)
    trainer.run()
    gib_sizes = [
        r.size
        for r in trainer.network.records
        if isinstance(r.tag, tuple) and r.tag[0] == "gib"
    ]
    assert gib_sizes and max(gib_sizes) < 1024  # §4.1.2: < 1KB


def test_osp_invalid_modes():
    with pytest.raises(ValueError):
        OSP(lgp="bogus")
    with pytest.raises(ValueError):
        OSP(force="ssp")


# ------------------------------------------------------------- co-location
def test_colocated_requires_colocated_spec():
    trainer = build(ColocatedOSP(), colocated_ps=False)
    with pytest.raises(ValueError):
        trainer.run()


def test_colocated_ps_worker_pays_pgp_overhead():
    trainer = build(ColocatedOSP(), colocated_ps=True, epochs=2)
    res = trainer.run()
    bct_ps = np.mean(
        [r.compute_time for r in res.recorder.iterations if r.worker == 0]
    )
    bct_other = np.mean(
        [r.compute_time for r in res.recorder.iterations if r.worker != 0]
    )
    assert bct_ps > bct_other
    overhead = bct_ps / bct_other - 1
    assert 0.01 < overhead < 0.15  # paper band 3-8% plus margin


def test_colocated_overhead_ordering_vgg_max_inception_min():
    """Fig. 9: VGG16 (param-heavy) has the highest OSP-C overhead,
    InceptionV3 (FLOP-heavy) the lowest."""
    def overhead(card):
        trainer = build(ColocatedOSP(), colocated_ps=True, epochs=2, card=card)
        res = trainer.run()
        ps = np.mean([r.compute_time for r in res.recorder.iterations if r.worker == 0])
        other = np.mean([r.compute_time for r in res.recorder.iterations if r.worker != 0])
        return ps / other - 1

    o_vgg = overhead("vgg16-cifar10")
    o_inc = overhead("inceptionv3-cifar100")
    o_r50 = overhead("resnet50-cifar10")
    assert o_vgg > o_inc
    assert o_inc < o_r50


def test_colocated_loopback_traffic_is_free():
    trainer = build(ColocatedOSP(), colocated_ps=True, epochs=2)
    trainer.run()
    for rec in trainer.network.records:
        if rec.src == rec.dst:
            assert rec.duration == 0.0


def test_osp_validation_ps_worker():
    with pytest.raises(ValueError):
        ColocatedOSP(ps_worker=-1)
