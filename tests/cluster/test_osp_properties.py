"""Property-based end-to-end invariants of OSP (timing mode: fast)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterSpec, DistributedTrainer, TimingEngine, TrainingPlan
from repro.core import OSP
from repro.hardware import LognormalJitter, NoJitter
from repro.nn.models import get_card


def run_osp(workers, epochs, ipe, sigma, seed, fixed_budget=None):
    jitter = LognormalJitter(sigma=sigma, seed=seed) if sigma else NoJitter()
    spec = ClusterSpec(n_workers=workers, jitter=jitter)
    plan = TrainingPlan(n_epochs=epochs, iterations_per_epoch=ipe, seed=seed)
    engine = TimingEngine(
        get_card("resnet50-cifar10"), spec, total_iterations=epochs * ipe, seed=seed
    )
    engine.tau = max(1.0, epochs * ipe / 5)
    osp = OSP(fixed_budget_fraction=fixed_budget)
    trainer = DistributedTrainer(spec, plan, engine, osp)
    res = trainer.run()
    return trainer, osp, res


@given(
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=2, max_value=5),
    st.integers(min_value=2, max_value=4),
    st.sampled_from([0.0, 0.15, 0.4]),
    st.integers(min_value=0, max_value=10),
)
@settings(max_examples=25, deadline=None)
def test_property_all_iterations_complete(workers, epochs, ipe, sigma, seed):
    _t, _o, res = run_osp(workers, epochs, ipe, sigma, seed)
    assert res.recorder.total_iterations == workers * epochs * ipe


@given(
    st.integers(min_value=2, max_value=6),
    st.integers(min_value=3, max_value=6),
    st.integers(min_value=0, max_value=10),
)
@settings(max_examples=20, deadline=None)
def test_property_push_bytes_conserved(workers, epochs, seed):
    """Every (worker, iteration) pushes exactly the full gradient across
    RS + ICS, whatever the budget trajectory did."""
    trainer, _osp, _res = run_osp(workers, epochs, 3, 0.2, seed)
    model_bytes = trainer.engine.model_bytes
    per_iter = {}
    for r in trainer.network.records:
        if isinstance(r.tag, tuple) and r.tag[0] in ("rs-push", "ics-push"):
            key = (r.tag[1], r.tag[2])
            per_iter[key] = per_iter.get(key, 0.0) + r.size
    assert per_iter
    for key, total in per_iter.items():
        assert total == pytest.approx(model_bytes, rel=1e-6), key


@given(
    st.floats(min_value=0.0, max_value=0.8),
    st.integers(min_value=0, max_value=5),
)
@settings(max_examples=15, deadline=None)
def test_property_budget_respects_eq5(fixed_budget, seed):
    _t, osp, _res = run_osp(4, 3, 3, 0.0, seed, fixed_budget=fixed_budget)
    assert osp.current_budget <= osp.u_max + 1e-6


@given(st.integers(min_value=0, max_value=5))
@settings(max_examples=10, deadline=None)
def test_property_gib_partition_is_exact(seed):
    trainer, osp, _res = run_osp(3, 4, 3, 0.1, seed)
    gib = osp.current_gib
    layers = set(trainer.engine.splitter.layers)
    assert set(gib.important_layers) | set(gib.unimportant_layers) == layers
    assert not (set(gib.important_layers) & set(gib.unimportant_layers))


@given(st.integers(min_value=0, max_value=3))
@settings(max_examples=8, deadline=None)
def test_property_deterministic_given_seed(seed):
    def fingerprint():
        _t, _o, res = run_osp(4, 3, 3, 0.3, seed)
        return [
            (r.worker, r.iteration, round(r.start_time, 9), round(r.sync_time, 9))
            for r in res.recorder.iterations
        ]

    assert fingerprint() == fingerprint()
