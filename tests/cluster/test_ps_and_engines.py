"""Unit tests for ParameterServer aggregation and the two engines."""

import numpy as np
import pytest

from repro.cluster import ClusterSpec, NumericEngine, ParameterServer, TimingEngine
from repro.cluster.spec import TrainingPlan
from repro.data import make_image_classification, train_test_split
from repro.nn.models import MLP, get_card
from repro.nn.models.registry import ModelCard
from repro.optim import SGD

CARD = ModelCard(
    name="unit-mlp",
    family="inception",
    dataset="synthetic",
    task="classification",
    paper_params=500_000,
    paper_flops_per_sample=1e8,
    paper_layers=6,
    batch_size=8,
    metric="top1",
    mini_factory=lambda seed: MLP([12, 8, 3], seed=seed),
)


def make_ps(n_workers=2, weights=None):
    model = MLP([4, 6, 2], seed=0)
    opt = SGD(model, lr=1.0)
    return model, ParameterServer(model, opt, n_workers, worker_weights=weights)


# -------------------------------------------------------------- PS buckets
def test_ps_accumulate_counts_and_quorum():
    _m, ps = make_ps(3)
    assert ps.accumulate("b", 0, {}) == 1
    assert ps.accumulate("b", 1, {}) == 2
    assert ps.pending("b") == 2
    assert ps.accumulate("b", 2, {}) == 3


def test_ps_double_deposit_rejected():
    _m, ps = make_ps(2)
    ps.accumulate("b", 0, {})
    with pytest.raises(RuntimeError):
        ps.accumulate("b", 0, {})


def test_ps_apply_average_weighted():
    model, ps = make_ps(2, weights=[3.0, 1.0])
    name = "net.m0.weight"
    shape = dict(model.named_parameters())[name].data.shape
    before = ps.snapshot([name])[name]
    g0 = np.ones(shape)
    g1 = -np.ones(shape)
    ps.accumulate("b", 0, {name: g0})
    ps.accumulate("b", 1, {name: g1})
    ps.apply_average("b")
    after = ps.snapshot([name])[name]
    # weighted avg = 0.75*1 + 0.25*(-1) = 0.5; lr=1 -> delta = -0.5
    assert np.allclose(after, before - 0.5)
    assert ps.version == 1


def test_ps_apply_average_empty_bucket_raises():
    _m, ps = make_ps(2)
    with pytest.raises(RuntimeError):
        ps.apply_average("nothing")


def test_ps_apply_immediate_scales_by_weight():
    model, ps = make_ps(2, weights=[1.0, 1.0])
    name = "net.m0.weight"
    shape = dict(model.named_parameters())[name].data.shape
    before = ps.snapshot([name])[name]
    ps.apply_immediate(0, {name: np.ones(shape)})
    after = ps.snapshot([name])[name]
    assert np.allclose(after, before - 0.5)  # weight 1/2, lr 1


def test_ps_snapshot_subset_and_unknown():
    _m, ps = make_ps()
    names = ps.param_names()
    snap = ps.snapshot([names[0]])
    assert set(snap) == {names[0]}
    with pytest.raises(KeyError):
        ps.snapshot(["ghost"])


def test_ps_snapshot_is_a_copy():
    _m, ps = make_ps()
    name = ps.param_names()[0]
    snap = ps.snapshot([name])
    snap[name][...] = 123.0
    assert not np.allclose(ps.snapshot([name])[name], 123.0)


def test_ps_timing_mode_counts_versions_only():
    ps = ParameterServer(None, None, 4)
    assert not ps.numeric
    for w in range(4):
        ps.accumulate("b", w, None)
    ps.apply_average("b")
    ps.apply_immediate(0, None)
    assert ps.version == 2
    assert ps.snapshot() == {}


def test_ps_validation():
    model = MLP([2, 2], seed=0)
    opt = SGD(model, lr=0.1)
    with pytest.raises(ValueError):
        ParameterServer(model, None, 2)
    with pytest.raises(ValueError):
        ParameterServer(model, opt, 0)
    with pytest.raises(ValueError):
        ParameterServer(model, opt, 2, worker_weights=[1.0])
    with pytest.raises(ValueError):
        ParameterServer(model, opt, 2, worker_weights=[-1.0, 2.0])


def test_ps_last_aggregated_tracks_full_gradient():
    model, ps = make_ps(1, weights=[1.0])
    grads = {n: np.ones(p.data.shape) for n, p in model.named_parameters()}
    ps.accumulate("b", 0, grads)
    ps.apply_average("b")
    assert set(ps.last_aggregated) == set(ps.param_names())


def test_ps_last_aggregated_consistent_across_apply_paths():
    """Regression: apply_immediate used to leave last_aggregated untouched,
    so PGP importance computed from it went stale under ASP-style updates.
    Both paths must record exactly what was applied, on the same scale."""
    name = "net.m0.weight"

    model, ps = make_ps(2, weights=[3.0, 1.0])
    shape = dict(model.named_parameters())[name].data.shape
    ps.accumulate("b", 0, {name: np.ones(shape)})
    ps.accumulate("b", 1, {name: -np.ones(shape)})
    ps.apply_average("b")
    # weighted average: 0.75*1 + 0.25*(-1) = 0.5
    assert np.allclose(ps.last_aggregated[name], 0.5)

    model2, ps2 = make_ps(2, weights=[3.0, 1.0])
    before = ps2.snapshot([name])[name]
    ps2.apply_immediate(0, {name: np.ones(shape)})
    # the applied (weight-scaled) gradient, not the raw push
    assert np.allclose(ps2.last_aggregated[name], 0.75)
    # and it matches what actually moved the model (lr=1)
    after = ps2.snapshot([name])[name]
    assert np.allclose(before - after, ps2.last_aggregated[name])


# ---------------------------------------------------------------- engines
def test_timing_engine_layer_bytes_sum_to_model():
    spec = ClusterSpec(n_workers=2)
    eng = TimingEngine(get_card("vgg16-cifar10"), spec, total_iterations=10)
    assert eng.model_bytes == pytest.approx(
        get_card("vgg16-cifar10").model_bytes, rel=1e-6
    )
    assert len(eng.layer_bytes) == 16


def test_timing_engine_loss_curve_monotone():
    spec = ClusterSpec(n_workers=1)
    eng = TimingEngine(get_card("resnet50-cifar10"), spec, total_iterations=100)
    losses = [eng.synthetic_loss(i) for i in range(0, 100, 10)]
    assert losses == sorted(losses, reverse=True)
    assert losses[0] <= eng.initial_loss


def test_timing_engine_compute_advances_steps():
    spec = ClusterSpec(n_workers=2)
    eng = TimingEngine(get_card("resnet50-cifar10"), spec, total_iterations=10)
    _g, l0, s = eng.compute(0, 0, 0)
    _g, l1, _s = eng.compute(0, 0, 1)
    assert l1 < l0
    assert s == 64


def test_timing_engine_importance_positive_and_stable():
    spec = ClusterSpec(n_workers=1)
    eng = TimingEngine(get_card("resnet50-cifar10"), spec, total_iterations=10)
    imp1 = eng.ps_layer_importance(None)
    imp2 = eng.ps_layer_importance(None)
    assert imp1 == imp2
    assert all(v > 0 for v in imp1.values())


def test_timing_engine_validation():
    spec = ClusterSpec(n_workers=1)
    with pytest.raises(ValueError):
        TimingEngine(get_card("resnet50-cifar10"), spec, total_iterations=0)


def test_numeric_engine_layer_bytes_scaled_to_card():
    ds = make_image_classification(80, n_classes=3, image_size=2, channels=3, seed=0)
    tr, te = train_test_split(ds, 0.25, seed=0)
    spec = ClusterSpec(n_workers=2)
    eng = NumericEngine(CARD, tr, te, spec, batch_size=8, seed=0)
    assert sum(eng.layer_bytes.values()) == pytest.approx(CARD.model_bytes, rel=1e-3)


def test_numeric_engine_compute_returns_full_gradients():
    ds = make_image_classification(80, n_classes=3, image_size=2, channels=3, seed=0)
    tr, te = train_test_split(ds, 0.25, seed=0)
    spec = ClusterSpec(n_workers=2)
    eng = NumericEngine(CARD, tr, te, spec, batch_size=8, seed=0)
    grads, loss, samples = eng.compute(0, 0, 0)
    assert set(grads) == {n for n, _ in eng.global_model.named_parameters()}
    assert loss > 0
    assert samples == CARD.batch_size  # virtual batch follows the card


def test_numeric_engine_importance_inf_for_unseen_layers():
    ds = make_image_classification(80, n_classes=3, image_size=2, channels=3, seed=0)
    tr, te = train_test_split(ds, 0.25, seed=0)
    spec = ClusterSpec(n_workers=1)
    eng = NumericEngine(CARD, tr, te, spec, batch_size=8, seed=0)
    ps = eng.make_ps(TrainingPlan())
    imp = eng.ps_layer_importance(ps)  # no gradients aggregated yet
    assert all(v == float("inf") for v in imp.values())


def test_numeric_engine_sync_replica_subset():
    ds = make_image_classification(80, n_classes=3, image_size=2, channels=3, seed=0)
    tr, te = train_test_split(ds, 0.25, seed=0)
    spec = ClusterSpec(n_workers=2)
    eng = NumericEngine(CARD, tr, te, spec, batch_size=8, seed=0)
    ps = eng.make_ps(TrainingPlan())
    name = ps.param_names()[0]
    # Perturb the replica, then restore just one parameter from the PS.
    eng.worker_params(0)[name][...] += 5.0
    eng.sync_replica(0, ps, names=[name])
    assert np.array_equal(eng.worker_params(0)[name], ps.snapshot([name])[name])
