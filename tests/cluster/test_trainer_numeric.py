"""Numeric-mode integration tests: real gradients through the simulator.

Uses a test-local tiny MLP model card so each run takes ~a second.
"""

import numpy as np
import pytest

from repro.cluster import (
    ClusterSpec,
    DistributedTrainer,
    NumericEngine,
    TrainingPlan,
)
from repro.core import OSP
from repro.data import make_image_classification, train_test_split
from repro.hardware import LognormalJitter, NoJitter
from repro.nn.models import MLP
from repro.nn.models.registry import ModelCard
from repro.optim import SGD, StepLR
from repro.sync import ASP, BSP, R2SP
from repro.nn.loss import cross_entropy

TINY_CARD = ModelCard(
    name="tiny-mlp",
    family="resnet",  # reuse a layer-size family for timing bookkeeping
    dataset="synthetic",
    task="classification",
    paper_params=1_000_000,
    paper_flops_per_sample=1e8,
    paper_layers=4,
    batch_size=16,
    metric="top1",
    mini_factory=lambda seed: MLP([3 * 8 * 8, 32, 4], seed=seed),
)

#: 8-class variant for the harder accuracy-ordering fixture.
TINY_CARD8 = ModelCard(
    name="tiny-mlp8",
    family="resnet",
    dataset="synthetic",
    task="classification",
    paper_params=1_000_000,
    paper_flops_per_sample=1e8,
    paper_layers=4,
    batch_size=16,
    metric="top1",
    mini_factory=lambda seed: MLP([3 * 8 * 8, 32, 8], seed=seed),
)


@pytest.fixture(scope="module")
def data():
    ds = make_image_classification(
        480, n_classes=4, image_size=8, noise=1.5, seed=0
    )
    return train_test_split(ds, test_fraction=0.25, seed=1)


@pytest.fixture(scope="module")
def hard_data():
    """Noisy enough that no method saturates at 100% — needed for the
    accuracy-ordering comparisons."""
    ds = make_image_classification(
        640, n_classes=8, image_size=8, noise=4.0, seed=2
    )
    return train_test_split(ds, test_fraction=0.25, seed=1)


def make_trainer(sync_model, data, workers=2, epochs=3, jitter=None, lr=0.1, card=TINY_CARD, **plan_kw):
    train, test = data
    spec = ClusterSpec(n_workers=workers, jitter=jitter or NoJitter())
    plan = TrainingPlan(n_epochs=epochs, lr=lr, momentum=0.9, **plan_kw)
    engine = NumericEngine(card, train, test, spec, batch_size=16, seed=0)
    return DistributedTrainer(spec, plan, engine, sync_model)


def test_numeric_bsp_learns(data):
    res = make_trainer(BSP(), data, epochs=5).run()
    assert res.best_metric > 0.6
    losses = [e.train_loss for e in res.recorder.epochs]
    assert losses[-1] < losses[0]


def test_numeric_all_sync_models_run(data):
    for sm in [BSP(), ASP(), R2SP(), OSP()]:
        res = make_trainer(sm, data, epochs=2).run()
        assert res.recorder.total_iterations > 0, sm.name


def test_numeric_runs_deterministic(data):
    def final_params():
        trainer = make_trainer(OSP(), data, epochs=2)
        trainer.run()
        return trainer.ps.snapshot()

    a, b = final_params(), final_params()
    for name in a:
        assert np.array_equal(a[name], b[name]), name


def test_bsp_single_worker_equals_sequential_sgd(data):
    """Strong equivalence: 1-worker BSP through the whole simulator must
    reproduce a plain sequential SGD loop bit-for-bit."""
    train, test = data
    trainer = make_trainer(BSP(), data, workers=1, epochs=3)
    trainer.run()
    sim_params = trainer.ps.snapshot()

    # Manual loop mirroring the engine's data order and PS optimizer.
    model = TINY_CARD.make_mini(seed=0)
    opt = SGD(model, lr=0.1, momentum=0.9)
    sched = StepLR(opt, step_epochs=10, gamma=0.5)
    loader = trainer.engine.loaders[0]
    for epoch in range(3):
        for x, y in loader.epoch(epoch):
            model.zero_grad()
            cross_entropy(model(x), y).backward()
            opt.step()
        sched.epoch_end(epoch)

    manual = model.state_dict()
    for name in manual:
        np.testing.assert_allclose(sim_params[name], manual[name], atol=1e-12)


def test_bsp_workers_stay_in_sync(data):
    """After any BSP iteration all replicas hold identical parameters."""
    trainer = make_trainer(BSP(), data, workers=3, epochs=2)
    trainer.run()
    p0 = trainer.engine.worker_params(0)
    for w in [1, 2]:
        pw = trainer.engine.worker_params(w)
        for name in p0:
            assert np.array_equal(p0[name], pw[name])


def test_asp_accuracy_below_bsp_under_jitter(hard_data):
    """The paper's central accuracy claim (Fig. 6b): ASP's staleness costs
    accuracy; BSP does not suffer it."""
    jitter = LognormalJitter(sigma=0.5, seed=3)
    res_bsp = make_trainer(BSP(), hard_data, workers=4, epochs=5, jitter=jitter, lr=0.2, card=TINY_CARD8).run()
    res_asp = make_trainer(ASP(), hard_data, workers=4, epochs=5, jitter=jitter, lr=0.2, card=TINY_CARD8).run()
    assert res_bsp.best_metric > res_asp.best_metric


def test_osp_accuracy_matches_bsp(hard_data):
    """Fig. 6b: OSP (with LGP) reaches BSP-level accuracy."""
    jitter = LognormalJitter(sigma=0.3, seed=3)
    res_bsp = make_trainer(BSP(), hard_data, workers=4, epochs=6, jitter=jitter, card=TINY_CARD8).run()
    res_osp = make_trainer(OSP(), hard_data, workers=4, epochs=6, jitter=jitter, card=TINY_CARD8).run()
    assert res_osp.best_metric >= res_bsp.best_metric - 0.08


def test_osp_important_params_synced_after_run(data):
    """At the end of a run every worker's parameters match the PS for the
    currently-important layers (RS keeps them fresh), and ICS finalization
    corrected the unimportant ones to some recent PS state."""
    trainer = make_trainer(OSP(), data, workers=2, epochs=3)
    trainer.run()
    osp = trainer.sync_model
    ps_params = trainer.ps.snapshot()
    imp_names = osp.splitter.params_of(osp.current_gib.important_layers)
    for w in range(2):
        replica = trainer.engine.worker_params(w)
        for name in imp_names:
            assert np.array_equal(replica[name], ps_params[name])


def test_osp_lgp_none_hurts_accuracy(hard_data):
    """Ablation (§4.2): without LGP, stale unimportant params cost accuracy."""
    jitter = LognormalJitter(sigma=0.3, seed=5)
    with_lgp = make_trainer(OSP(lgp="local"), hard_data, workers=4, epochs=6, jitter=jitter, lr=0.2, card=TINY_CARD8).run()
    without = make_trainer(OSP(lgp="none"), hard_data, workers=4, epochs=6, jitter=jitter, lr=0.2, card=TINY_CARD8).run()
    assert with_lgp.best_metric >= without.best_metric


def test_osp_ema_lgp_runs_and_tracks_memory(data):
    trainer = make_trainer(OSP(lgp="ema"), data, workers=2, epochs=3)
    res = trainer.run()
    assert res.best_metric > 0.3
    # EMA-LGP carries per-parameter state (the §4.2 memory objection).
    total_mem = sum(
        c.memory_overhead_bytes for c in trainer.sync_model._correctors
    )
    assert total_mem > 0


def test_numeric_early_stopping(data):
    res = make_trainer(
        BSP(),
        data,
        epochs=30,
        early_stop_patience=2,
        early_stop_delta=0.5,  # unreachable improvement
    ).run()
    assert len(res.recorder.epochs) < 30


def test_numeric_weighted_aggregation_by_shard_size(data):
    """PS weights gradients by shard fraction (§2.1.1). With unequal
    shards the weights must differ."""
    train, test = data
    spec = ClusterSpec(n_workers=3, jitter=NoJitter())
    engine = NumericEngine(TINY_CARD, train, test, spec, batch_size=16, seed=0)
    plan = TrainingPlan(n_epochs=1)
    ps = engine.make_ps(plan)
    assert ps.worker_weights.sum() == pytest.approx(1.0)
    assert all(w > 0 for w in ps.worker_weights)
