"""Integration tests: trainer + sync models in timing mode."""

import numpy as np
import pytest

from repro.cluster import (
    ClusterSpec,
    DistributedTrainer,
    TimingEngine,
    TrainingPlan,
)
from repro.core import OSP, ColocatedOSP
from repro.hardware import LognormalJitter, NoJitter, PersistentStraggler
from repro.nn.models import get_card
from repro.sync import ASP, BSP, R2SP, SSP, SyncSwitch


def run(sync_model, workers=4, epochs=3, ipe=4, sigma=0.0, card="resnet50-cifar10", **spec_kw):
    jitter = LognormalJitter(sigma=sigma, seed=0) if sigma else NoJitter()
    spec = ClusterSpec(n_workers=workers, jitter=jitter, **spec_kw)
    plan = TrainingPlan(n_epochs=epochs, iterations_per_epoch=ipe)
    engine = TimingEngine(get_card(card), spec, total_iterations=epochs * ipe)
    return DistributedTrainer(spec, plan, engine, sync_model).run()


def test_all_sync_models_complete_all_iterations():
    for sm in [BSP(), ASP(), SSP(staleness=2), R2SP(), R2SP(duplex=True), SyncSwitch(switch_epoch=2), OSP()]:
        res = run(sm)
        assert res.recorder.total_iterations == 4 * 3 * 4, sm.name


def test_runs_are_deterministic():
    def fingerprint():
        res = run(OSP(), sigma=0.2)
        return [
            (r.worker, r.iteration, round(r.start_time, 9), round(r.sync_time, 9))
            for r in res.recorder.iterations
        ]

    assert fingerprint() == fingerprint()


def test_bsp_iteration_cost_is_max_of_workers():
    """With a persistent straggler, BSP pays its slowdown every iteration."""
    slow = PersistentStraggler(slow_workers=[0], slow_factor=3.0)
    spec = ClusterSpec(n_workers=4, jitter=slow)
    plan = TrainingPlan(n_epochs=1, iterations_per_epoch=4)
    engine = TimingEngine(get_card("resnet50-cifar10"), spec, total_iterations=4)
    res_straggler = DistributedTrainer(spec, plan, engine, BSP()).run()
    res_uniform = run(BSP(), workers=4, epochs=1, ipe=4)
    # One 3x-slow worker stretches every barrier round by 2 extra compute
    # times (comm is unchanged), so the run is substantially longer.
    assert res_straggler.wall_time > 1.5 * res_uniform.wall_time


def test_asp_absorbs_straggler_better_than_bsp():
    slow = PersistentStraggler(slow_workers=[0], slow_factor=4.0)

    def run_with(sm):
        spec = ClusterSpec(n_workers=4, jitter=slow)
        plan = TrainingPlan(n_epochs=2, iterations_per_epoch=4)
        engine = TimingEngine(get_card("resnet50-cifar10"), spec, total_iterations=8)
        res = DistributedTrainer(spec, plan, engine, sm).run()
        # throughput of the three healthy workers
        healthy = [r for r in res.recorder.iterations if r.worker != 0]
        span = max(
            r.start_time + r.compute_time + r.sync_time for r in healthy
        )
        return sum(r.samples for r in healthy) / span

    assert run_with(ASP()) > 1.5 * run_with(BSP())


def test_bsp_bst_shows_incast_scaling():
    """BSP's sync time grows with worker count (incast, Fig. 1 & 3)."""
    bst = {}
    for n in [2, 4, 8]:
        res = run(BSP(), workers=n, epochs=1, ipe=3)
        bst[n] = res.mean_bst
    assert bst[8] > bst[4] > bst[2]


def test_r2sp_avoids_incast_bst_vs_bsp():
    res_bsp = run(BSP(), workers=8, epochs=1, ipe=3)
    res_r2sp = run(R2SP(), workers=8, epochs=1, ipe=3)
    # R2SP transfers at full bandwidth; its BST includes queueing but the
    # first-served worker's sync is ~N times faster than under incast.
    min_bst_r2sp = min(r.sync_time for r in res_r2sp.recorder.iterations)
    min_bst_bsp = min(r.sync_time for r in res_bsp.recorder.iterations)
    assert min_bst_r2sp < 0.5 * min_bst_bsp


def test_ssp_bounds_iteration_gap():
    slow = PersistentStraggler(slow_workers=[0], slow_factor=3.0)
    staleness = 2
    sm = SSP(staleness=staleness)
    spec = ClusterSpec(n_workers=3, jitter=slow)
    plan = TrainingPlan(n_epochs=2, iterations_per_epoch=6)
    engine = TimingEngine(get_card("resnet50-cifar10"), spec, total_iterations=12)
    trainer = DistributedTrainer(spec, plan, engine, sm)

    # Track per-worker progress over virtual time via iteration records.
    res = trainer.run()
    events = sorted(
        res.recorder.iterations, key=lambda r: r.start_time + r.compute_time + r.sync_time
    )
    progress = {w: 0 for w in range(3)}
    for rec in events:
        progress[rec.worker] = rec.iteration + 1
        spread = max(progress.values()) - min(progress.values())
        assert spread <= staleness + 1


def test_sync_switch_changes_behavior_at_boundary():
    res = run(SyncSwitch(switch_epoch=1), workers=4, epochs=2, ipe=4, sigma=0.0)
    bsts = {}
    for r in res.recorder.iterations:
        bsts.setdefault(r.iteration // 4, []).append(r.sync_time)
    # Epoch 0 = BSP (incast: ~N*S/b each way); epoch 1 = ASP (in-phase at
    # sigma=0, so same contention) — distinguish by PS version ordering
    # instead: BSP bumps once per round, ASP once per worker push.
    assert res.recorder.total_iterations == 32


def test_early_stopping_halts_all_workers_consistently():
    spec = ClusterSpec(n_workers=4, jitter=NoJitter())
    plan = TrainingPlan(
        n_epochs=30,
        iterations_per_epoch=2,
        early_stop_patience=2,
        early_stop_delta=1.0,  # impossible improvement -> stop fast
    )
    engine = TimingEngine(get_card("resnet50-cifar10"), spec, total_iterations=60)
    res = DistributedTrainer(spec, plan, engine, BSP()).run()
    # stopped long before 30 epochs; all workers did the same count
    counts = {}
    for r in res.recorder.iterations:
        counts[r.worker] = counts.get(r.worker, 0) + 1
    assert len(set(counts.values())) == 1
    assert res.recorder.total_iterations < 30 * 2 * 4


def test_early_stopping_with_barrier_model_no_deadlock():
    spec = ClusterSpec(n_workers=3, jitter=LognormalJitter(sigma=0.3, seed=1))
    plan = TrainingPlan(
        n_epochs=20, iterations_per_epoch=2, early_stop_patience=1, early_stop_delta=1.0
    )
    engine = TimingEngine(get_card("resnet50-cifar10"), spec, total_iterations=40)
    res = DistributedTrainer(spec, plan, engine, OSP()).run()
    assert res.recorder.total_iterations > 0


def test_timing_mode_requires_iterations_per_epoch():
    spec = ClusterSpec(n_workers=2)
    plan = TrainingPlan(n_epochs=1)  # no iterations_per_epoch
    engine = TimingEngine(get_card("resnet50-cifar10"), spec, total_iterations=4)
    with pytest.raises(ValueError):
        DistributedTrainer(spec, plan, engine, BSP())


def test_epoch_records_and_metric_curve():
    res = run(BSP(), epochs=3, ipe=4)
    assert len(res.recorder.epochs) == 3
    times = [e.time for e in res.recorder.epochs]
    assert times == sorted(times)
    metrics = [e.metric for e in res.recorder.epochs]
    assert metrics == sorted(metrics)  # synthetic curve rises


def test_recorder_summaries_consistent():
    res = run(ASP(), epochs=2, ipe=4)
    rec = res.recorder
    assert rec.total_samples == rec.total_iterations * 64
    assert rec.throughput() > 0
    assert 0 < rec.communication_share() < 1
    assert rec.mean_iteration_time() == pytest.approx(
        rec.mean_bct() + rec.mean_bst()
    )


def test_ps_agg_bandwidth_none_speeds_up_bsp():
    res_with = run(BSP(), workers=8, epochs=1, ipe=3)
    res_without = run(BSP(), workers=8, epochs=1, ipe=3, ps_agg_bandwidth=None)
    assert res_without.mean_bst < res_with.mean_bst
