"""The tutorial's custom sync model (docs/tutorial.md §4) must actually
work — this test IS the snippet, kept honest."""

import numpy as np

from repro.cluster import ClusterSpec, DistributedTrainer, NumericEngine, TimingEngine, TrainingPlan
from repro.data import make_image_classification, train_test_split
from repro.hardware import NoJitter
from repro.nn.models import MLP, get_card
from repro.nn.models.registry import ModelCard
from repro.sync import BSP
from repro.sync.base import SyncModel


class PeriodicBSP(SyncModel):
    name = "periodic-bsp"

    def __init__(self, period: int = 4):
        self.period = period

    def setup(self, ctx):
        super().setup(ctx)
        self._barrier = ctx.barrier()

    def synchronize(self, ctx, worker, epoch, iteration, grads, loss):
        if iteration % self.period:
            if grads is not None:  # local step on the replica
                lr = ctx.current_lr
                replica = ctx.engine.worker_params(worker)
                for name, g in grads.items():
                    replica[name][...] -= lr * g
            return  # no communication at all
        nbytes = ctx.engine.model_bytes
        yield ctx.transfer_to_ps(worker, nbytes)
        if ctx.ps.accumulate(f"p:{iteration}", worker, grads) == ctx.spec.n_workers:
            ctx.ps.apply_average(f"p:{iteration}")
        yield self._barrier.wait()
        yield ctx.transfer_from_ps(worker, nbytes)
        ctx.engine.sync_replica(worker, ctx.ps)


def test_periodic_bsp_timing_mode_syncs_less():
    def run(sync):
        spec = ClusterSpec(n_workers=4, jitter=NoJitter())
        plan = TrainingPlan(n_epochs=2, iterations_per_epoch=8)
        engine = TimingEngine(get_card("resnet50-cifar10"), spec, total_iterations=16)
        return DistributedTrainer(spec, plan, engine, sync).run()

    periodic = run(PeriodicBSP(period=4))
    full = run(BSP())
    assert periodic.mean_bst < 0.5 * full.mean_bst
    assert periodic.throughput > 1.5 * full.throughput


def test_periodic_bsp_numeric_mode_learns():
    card = ModelCard(
        name="tut-mlp",
        family="resnet",
        dataset="synthetic",
        task="classification",
        paper_params=1_000_000,
        paper_flops_per_sample=1e8,
        paper_layers=4,
        batch_size=16,
        metric="top1",
        mini_factory=lambda seed: MLP([3 * 8 * 8, 32, 4], seed=seed),
    )
    ds = make_image_classification(480, n_classes=4, image_size=8, noise=1.5, seed=0)
    train, test = train_test_split(ds, 0.25, seed=1)
    spec = ClusterSpec(n_workers=2, jitter=NoJitter())
    plan = TrainingPlan(n_epochs=4, lr=0.1, momentum=0.9)
    engine = NumericEngine(card, train, test, spec, batch_size=16, seed=0)
    res = DistributedTrainer(spec, plan, engine, PeriodicBSP(period=3)).run()
    assert res.best_metric > 0.6
