"""Tests for the WFBP baseline."""

import numpy as np
import pytest

from repro.cluster import ClusterSpec, DistributedTrainer, NumericEngine, TimingEngine, TrainingPlan
from repro.data import make_image_classification, train_test_split
from repro.hardware import NoJitter
from repro.nn.models import MLP, get_card
from repro.nn.models.registry import ModelCard
from repro.sync import BSP, WFBP


def run_timing(sync, epochs=2, ipe=4, workers=8):
    spec = ClusterSpec(n_workers=workers, jitter=NoJitter())
    plan = TrainingPlan(n_epochs=epochs, iterations_per_epoch=ipe)
    engine = TimingEngine(get_card("resnet50-cifar10"), spec, total_iterations=epochs * ipe)
    return DistributedTrainer(spec, plan, engine, sync).run()


def test_wfbp_runs_all_iterations():
    res = run_timing(WFBP())
    assert res.recorder.total_iterations == 2 * 4 * 8


def test_wfbp_bst_between_zero_and_bsp():
    res_wfbp = run_timing(WFBP())
    res_bsp = run_timing(BSP())
    assert 0 < res_wfbp.mean_bst < res_bsp.mean_bst


def test_wfbp_hides_roughly_the_backward_window():
    """Exposed push bytes shrink by ~T_bwd x (b/N) worth of traffic."""
    res_wfbp = run_timing(WFBP())
    res_bsp = run_timing(BSP())
    spec = ClusterSpec(n_workers=8, jitter=NoJitter())
    engine = TimingEngine(get_card("resnet50-cifar10"), spec, total_iterations=8)
    t_bwd = engine.base_compute_time(spec) * 2 / 3
    # BSP push phase ~ N*S/b; WFBP saves up to t_bwd of it.
    saved = res_bsp.mean_bst - res_wfbp.mean_bst
    assert saved == pytest.approx(t_bwd, rel=0.35)


def test_wfbp_numeric_matches_bsp_parameters():
    """WFBP changes only transfer scheduling, not update math."""
    card = ModelCard(
        name="wfbp-mlp",
        family="resnet",
        dataset="synthetic",
        task="classification",
        paper_params=1_000_000,
        paper_flops_per_sample=1e8,
        paper_layers=4,
        batch_size=16,
        metric="top1",
        mini_factory=lambda seed: MLP([3 * 4 * 4, 16, 3], seed=seed),
    )
    ds = make_image_classification(160, n_classes=3, image_size=4, seed=0)
    train, test = train_test_split(ds, 0.25, seed=0)

    def final(sync):
        spec = ClusterSpec(n_workers=2, jitter=NoJitter())
        plan = TrainingPlan(n_epochs=2, lr=0.1, momentum=0.9)
        engine = NumericEngine(card, train, test, spec, batch_size=10, seed=0)
        trainer = DistributedTrainer(spec, plan, engine, sync)
        trainer.run()
        return trainer.ps.snapshot()

    a, b = final(BSP()), final(WFBP())
    for name in a:
        np.testing.assert_allclose(a[name], b[name], atol=1e-12)
