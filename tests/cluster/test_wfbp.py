"""Tests for the WFBP baseline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterSpec, DistributedTrainer, NumericEngine, TimingEngine, TrainingPlan
from repro.data import make_image_classification, train_test_split
from repro.hardware import NoJitter
from repro.nn.models import MLP, get_card
from repro.nn.models.registry import ModelCard
from repro.sync import BSP, WFBP
from repro.sync.wfbp import wfbp_overlap


def run_timing(sync, epochs=2, ipe=4, workers=8):
    spec = ClusterSpec(n_workers=workers, jitter=NoJitter())
    plan = TrainingPlan(n_epochs=epochs, iterations_per_epoch=ipe)
    engine = TimingEngine(get_card("resnet50-cifar10"), spec, total_iterations=epochs * ipe)
    return DistributedTrainer(spec, plan, engine, sync).run()


def test_wfbp_runs_all_iterations():
    res = run_timing(WFBP())
    assert res.recorder.total_iterations == 2 * 4 * 8


def test_wfbp_bst_between_zero_and_bsp():
    res_wfbp = run_timing(WFBP())
    res_bsp = run_timing(BSP())
    assert 0 < res_wfbp.mean_bst < res_bsp.mean_bst


def test_wfbp_hides_roughly_the_backward_window():
    """Exposed push bytes shrink by ~T_bwd x (b/N) worth of traffic."""
    res_wfbp = run_timing(WFBP())
    res_bsp = run_timing(BSP())
    spec = ClusterSpec(n_workers=8, jitter=NoJitter())
    engine = TimingEngine(get_card("resnet50-cifar10"), spec, total_iterations=8)
    t_bwd = engine.base_compute_time(spec) * 2 / 3
    # BSP push phase ~ N*S/b; WFBP saves up to t_bwd of it.
    saved = res_bsp.mean_bst - res_wfbp.mean_bst
    assert saved == pytest.approx(t_bwd, rel=0.35)


_layer_lists = st.lists(
    st.floats(min_value=0.0, max_value=1e8, allow_nan=False), min_size=1, max_size=12
)


@given(_layer_lists, st.floats(min_value=1.0, max_value=1e9))
@settings(max_examples=100, deadline=None)
def test_overlap_decomposition_conserves_layer_bytes(sizes, rate):
    """hidden + exposed == nbytes per layer; totals sum to model bytes."""
    layers = [(f"l{i}", b) for i, b in enumerate(sizes)]
    sched = wfbp_overlap(layers, t_bwd=1.0, fair_rate=rate)
    assert len(sched) == len(layers)
    for (name, nbytes), (sname, hidden, exposed) in zip(layers, sched):
        assert sname == name
        assert 0.0 <= hidden <= nbytes + 1e-9
        assert hidden + exposed == pytest.approx(nbytes, abs=1e-6)
    total = sum(b for _n, b in layers)
    assert sum(h + e for _n, h, e in sched) == pytest.approx(total, rel=1e-12, abs=1e-6)


@given(
    _layer_lists,
    st.floats(min_value=1.0, max_value=1e8),
    st.floats(min_value=1.0, max_value=4.0),
)
@settings(max_examples=100, deadline=None)
def test_exposed_bytes_monotone_nonincreasing_in_bandwidth(sizes, rate, factor):
    """More bandwidth never increases the exposed (BST-visible) bytes."""
    layers = [(f"l{i}", b) for i, b in enumerate(sizes)]
    exposed_slow = sum(e for _n, _h, e in wfbp_overlap(layers, 1.0, rate))
    exposed_fast = sum(e for _n, _h, e in wfbp_overlap(layers, 1.0, rate * factor))
    assert exposed_fast <= exposed_slow + 1e-6


def test_overlap_no_double_charge_after_idle_gap():
    # Layer "a" (8 B at rate 1) finishes its push at t=8; "b" becomes
    # ready at t_bwd*8/13 ~ 6.15 and starts at t=8, leaving 2 s of the
    # 10 s backward window => 2 B hidden. The old cumulative-budget
    # accounting charged a's 8 B against b's (t_bwd - ready)*rate window
    # and hid nothing.
    sched = wfbp_overlap([("a", 8.0), ("b", 5.0)], t_bwd=10.0, fair_rate=1.0)
    assert sched[0][1] == pytest.approx(8.0)  # "a" fully hidden
    assert sched[1][1] == pytest.approx(2.0)  # "b" hides the FIFO remainder


def test_overlap_zero_rate_exposes_everything():
    sched = wfbp_overlap([("a", 5.0)], t_bwd=10.0, fair_rate=0.0)
    assert sched == [("a", 0.0, 5.0)]


def test_wfbp_numeric_matches_bsp_parameters():
    """WFBP changes only transfer scheduling, not update math."""
    card = ModelCard(
        name="wfbp-mlp",
        family="resnet",
        dataset="synthetic",
        task="classification",
        paper_params=1_000_000,
        paper_flops_per_sample=1e8,
        paper_layers=4,
        batch_size=16,
        metric="top1",
        mini_factory=lambda seed: MLP([3 * 4 * 4, 16, 3], seed=seed),
    )
    ds = make_image_classification(160, n_classes=3, image_size=4, seed=0)
    train, test = train_test_split(ds, 0.25, seed=0)

    def final(sync):
        spec = ClusterSpec(n_workers=2, jitter=NoJitter())
        plan = TrainingPlan(n_epochs=2, lr=0.1, momentum=0.9)
        engine = NumericEngine(card, train, test, spec, batch_size=10, seed=0)
        trainer = DistributedTrainer(spec, plan, engine, sync)
        trainer.run()
        return trainer.ps.snapshot()

    a, b = final(BSP()), final(WFBP())
    for name in a:
        np.testing.assert_allclose(a[name], b[name], atol=1e-12)
