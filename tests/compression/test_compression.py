"""Unit + property tests for gradient compressors."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import (
    RandomK,
    ResidualMemory,
    TopK,
    Uniform8Bit,
    dense_bytes,
)


def grads(seed=0, sizes=((10,), (4, 5))):
    rng = np.random.default_rng(seed)
    return {f"p{i}": rng.normal(size=s) for i, s in enumerate(sizes)}


def test_dense_bytes():
    g = grads()
    assert dense_bytes(g) == (10 + 20) * 4


# ------------------------------------------------------------------- TopK
def test_topk_keeps_largest():
    g = {"w": np.array([0.1, -5.0, 0.2, 3.0])}
    payload, wire = TopK(0.5).compress(g)
    out = TopK(0.5).decompress(payload)
    assert np.allclose(out["w"], [0, -5.0, 0, 3.0])
    assert wire == 2 * 8 + 4  # 2 kept entries + 1 tensor's metadata


def test_topk_full_ratio_lossless():
    g = grads()
    c = TopK(1.0)
    out = c.decompress(c.compress(g)[0])
    for k in g:
        assert np.allclose(out[k], g[k])


def test_topk_exact_k_with_ties():
    g = {"w": np.ones(10)}
    payload, _ = TopK(0.3).compress(g)
    assert payload["indices"].size == 3


def test_topk_shapes_preserved():
    g = grads()
    out = TopK(0.2).decompress(TopK(0.2).compress(g)[0])
    for k in g:
        assert out[k].shape == g[k].shape


def test_topk_wire_smaller_than_dense():
    g = grads(sizes=((1000,),))
    _p, wire = TopK(0.1).compress(g)
    assert wire < dense_bytes(g)


def test_topk_validation():
    with pytest.raises(ValueError):
        TopK(0.0)
    with pytest.raises(ValueError):
        TopK(1.5)


@given(st.integers(min_value=0, max_value=2**31 - 1), st.floats(min_value=0.05, max_value=1.0))
@settings(max_examples=50, deadline=None)
def test_property_topk_reconstruction_subset(seed, ratio):
    g = grads(seed=seed, sizes=((37,), (8, 3)))
    c = TopK(ratio)
    out = c.decompress(c.compress(g)[0])
    for k in g:
        nz = out[k] != 0
        # kept entries match original exactly; zeros elsewhere
        assert np.allclose(out[k][nz], g[k][nz])


def test_topk_exact_k_with_ties_across_tensors():
    # 10 identical magnitudes split over two tensors: the tie-trim must
    # still land on exactly k kept entries.
    g = {"a": np.ones(6), "b": -np.ones(4)}
    payload, _ = TopK(0.5).compress(g)
    assert payload["indices"].size == 5


def test_topk_decompress_preserves_dtype():
    g = {"w": np.random.default_rng(0).normal(size=8).astype(np.float32)}
    out = TopK(0.5).decompress(TopK(0.5).compress(g)[0])
    assert out["w"].dtype == np.float32


def test_topk_wire_counts_per_tensor_metadata():
    # dense_bytes convention: 4 bytes/float. Sparse wire = kept x (4-byte
    # value + 4-byte index) + 4 bytes of metadata per tensor, matching
    # Uniform8Bit's 4-bytes/tensor scale accounting.
    g = grads(sizes=((10,), (4, 5)))  # 30 entries, 2 tensors
    _p, wire = TopK(0.2).compress(g)  # k = 6
    assert wire == 6 * 8 + 2 * 4
    assert dense_bytes(g) == 30 * 4


def test_randomk_wire_matches_topk_convention():
    g = grads(sizes=((10,), (4, 5)))
    _pt, wt = TopK(0.2).compress(g)
    _pr, wr = RandomK(0.2, seed=0).compress(g)
    assert wt == wr


# ---------------------------------------------------------------- RandomK
def test_randomk_unbiased_scaling():
    g = {"w": np.ones(1000)}
    c = RandomK(0.25, seed=0)
    out = c.decompress(c.compress(g)[0])
    kept = out["w"][out["w"] != 0]
    assert np.allclose(kept, 4.0)  # 1/0.25


def test_randomk_expectation_approximates_dense():
    g = {"w": np.ones(500)}
    acc = np.zeros(500)
    c = RandomK(0.2, seed=1)
    for _ in range(200):
        acc += c.decompress(c.compress(g)[0])["w"]
    mean = acc / 200
    # Coordinate-wise it is Bernoulli(0.2)x5 averaged over 200 draws; check
    # the global mean tightly and coordinates loosely (4.5 sigma).
    assert mean.mean() == pytest.approx(1.0, abs=0.05)
    assert np.abs(mean - 1.0).max() < 4.5 * 5 * np.sqrt(0.2 * 0.8 / 200)


def test_randomk_biased_mode():
    g = {"w": np.ones(100)}
    c = RandomK(0.5, seed=0, unbiased=False)
    out = c.decompress(c.compress(g)[0])
    kept = out["w"][out["w"] != 0]
    assert np.allclose(kept, 1.0)


def test_randomk_deterministic_with_seed():
    g = grads()
    a = RandomK(0.3, seed=5).compress(g)[0]["indices"]
    b = RandomK(0.3, seed=5).compress(g)[0]["indices"]
    assert np.array_equal(a, b)


def test_randomk_validation():
    with pytest.raises(ValueError):
        RandomK(0)


# ----------------------------------------------------------------- 8-bit
def test_quantize_roundtrip_error_bounded():
    g = grads(seed=2)
    c = Uniform8Bit()
    out = c.decompress(c.compress(g)[0])
    for k in g:
        scale = np.abs(g[k]).max()
        assert np.abs(out[k] - g[k]).max() <= scale / 127 + 1e-12


def test_quantize_wire_is_quarter_of_dense():
    g = grads(sizes=((1000,),))
    _p, wire = Uniform8Bit().compress(g)
    assert wire == 1000 + 4
    assert wire < dense_bytes(g) / 3


def test_quantize_zero_tensor():
    g = {"w": np.zeros(10)}
    c = Uniform8Bit()
    out = c.decompress(c.compress(g)[0])
    assert np.allclose(out["w"], 0.0)


@pytest.mark.parametrize("bad", [np.nan, np.inf, -np.inf])
def test_quantize_nonfinite_roundtrips_to_zeros(bad):
    # Regression: a single NaN/inf entry made scale non-finite and the
    # int8 cast undefined. The poisoned tensor now takes the zero path.
    g = {"w": np.array([0.5, bad, -1.0]), "ok": np.array([1.0, 2.0])}
    c = Uniform8Bit()
    payload, wire = c.compress(g)
    q, scale = payload["w"]
    assert scale == 0.0
    assert q.dtype == np.int8 and not q.any()
    out = c.decompress(payload)
    assert np.all(out["w"] == 0.0)
    assert np.isfinite(out["ok"]).all()  # healthy tensors unaffected
    assert wire == 3 + 4 + 2 + 4


def test_quantize_nonfinite_deterministic():
    g = {"w": np.array([np.nan, np.inf, 1.0])}
    a = Uniform8Bit().compress(g)[0]["w"]
    b = Uniform8Bit().compress(g)[0]["w"]
    assert np.array_equal(a[0], b[0]) and a[1] == b[1] == 0.0


# ------------------------------------------------------------- residual EF
def test_residual_memory_carries_error_forward():
    c = ResidualMemory(TopK(0.5))
    g = {"w": np.array([10.0, 1.0])}
    p1, _ = c.compress(g)
    sent1 = c.decompress(p1)
    assert np.allclose(sent1["w"], [10.0, 0.0])
    # Second round: residual [0, 1] added to fresh grad, so the small
    # coordinate eventually wins transmission.
    p2, _ = c.compress({"w": np.array([0.0, 1.0])})
    sent2 = c.decompress(p2)
    assert sent2["w"][1] == pytest.approx(2.0)


def test_residual_memory_nothing_lost_in_total():
    """Sum of transmissions equals sum of gradients (delay, don't drop)."""
    rng = np.random.default_rng(0)
    c = ResidualMemory(TopK(0.3))
    total_in = np.zeros(20)
    total_out = np.zeros(20)
    for _ in range(50):
        g = {"w": rng.normal(size=20)}
        total_in += g["w"]
        total_out += c.decompress(c.compress(g)[0])["w"]
    # residual bounds the difference
    assert np.abs(total_in - total_out).max() <= c.residual_norm + 1e-9


def test_residual_norm_zero_initially():
    assert ResidualMemory(TopK(0.5)).residual_norm == 0.0


def test_residual_survives_disjoint_layer_sets():
    # Regression: compressing layer set A then disjoint set B used to wipe
    # A's residuals — error feedback silently dropped gradient mass when
    # calls alternate between layer partitions (as RS/ICS scheduling does).
    rng = np.random.default_rng(1)
    c = ResidualMemory(TopK(0.3))
    sets = (("a", "b"), ("c", "d"))
    total_in = {k: np.zeros(16) for s in sets for k in s}
    total_out = {k: np.zeros(16) for s in sets for k in s}
    for step in range(40):
        names = sets[step % 2]
        g = {k: rng.normal(size=16) for k in names}
        for k in names:
            total_in[k] += g[k]
        sent = c.decompress(c.compress(g)[0])
        for k in names:
            total_out[k] += sent[k]
    # Every layer's residual is still tracked, and what was withheld is
    # exactly the carried residual — nothing was lost across alternations.
    assert set(c._residual) == {"a", "b", "c", "d"}
    for k, r in c._residual.items():
        assert np.allclose(total_in[k] - total_out[k], r, atol=1e-9)


def test_residual_with_lossless_inner_keeps_no_residual():
    c = ResidualMemory(TopK(1.0))
    c.compress(grads())
    assert c.residual_norm == pytest.approx(0.0)
