"""Unit + property tests for the Gradient Importance Bitmap."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.gib import GIB


def test_gib_basic_queries():
    gib = GIB(("a", "b", "c"), (True, False, True))
    assert gib.is_important("a")
    assert not gib.is_important("b")
    assert gib.important_layers == ("a", "c")
    assert gib.unimportant_layers == ("b",)
    assert gib.n_important == 2


def test_gib_unknown_layer():
    gib = GIB(("a",), (True,))
    with pytest.raises(KeyError):
        gib.is_important("zzz")


def test_gib_validation():
    with pytest.raises(ValueError):
        GIB(("a", "b"), (True,))
    with pytest.raises(ValueError):
        GIB(("a", "a"), (True, False))


def test_gib_degenerate_constructors():
    layers = ("x", "y", "z")
    assert GIB.all_important(layers).n_important == 3
    assert GIB.all_unimportant(layers).n_important == 0


def test_gib_wire_bytes_under_1kb_for_paper_models():
    """Paper §4.1.2: GIB < 1KB for models under 1K layers."""
    layers = tuple(f"l{i}" for i in range(999))
    assert GIB.all_important(layers).wire_bytes() < 1024


def test_gib_pack_unpack_roundtrip():
    layers = tuple(f"l{i}" for i in range(13))
    rng = np.random.default_rng(0)
    bits = tuple(bool(b) for b in rng.integers(0, 2, size=13))
    gib = GIB(layers, bits)
    assert GIB.unpack(gib.pack(), layers) == gib


def test_gib_unpack_short_payload_raises():
    with pytest.raises(ValueError):
        GIB.unpack(b"", ("a", "b"))


def test_gib_unpack_oversized_payload_raises():
    """A payload longer than ceil(n/8) used to be silently accepted
    (extra bytes dropped on the floor); it must now be rejected."""
    layers = ("a", "b", "c")
    payload = GIB.all_important(layers).pack()
    with pytest.raises(ValueError):
        GIB.unpack(payload + b"\x00", layers)


def test_gib_unpack_nonzero_padding_raises():
    """Padding bits past the layer count must be zero — a corrupted wire
    payload with stray bits used to decode to a valid-looking bitmap."""
    layers = ("a", "b", "c")
    payload = bytes([0b11111111])  # low 5 bits are padding and must be 0
    with pytest.raises(ValueError, match="padding"):
        GIB.unpack(payload, layers)
    # the clean payload for the same bitmap (packbits is MSB-first) decodes
    assert GIB.unpack(bytes([0b11100000]), layers).n_important == 3


def test_from_importance_explicit_layer_order():
    """`layers` pins the bitmap's layer order (the wire order both ends
    must agree on), independent of dict insertion order."""
    importance = {"b": 2.0, "a": 1.0}
    sizes = {"b": 10, "a": 10}
    by_insertion = GIB.from_importance(importance, sizes, 10)
    assert by_insertion.layers == ("b", "a")
    pinned = GIB.from_importance(importance, sizes, 10, layers=("a", "b"))
    assert pinned.layers == ("a", "b")
    # same split decision either way, only the wire order differs
    assert set(pinned.important_layers) == set(by_insertion.important_layers)
    assert GIB.unpack(pinned.pack(), ("a", "b")) == pinned


def test_from_importance_layers_must_match_importance_keys():
    importance = {"a": 1.0, "b": 2.0}
    sizes = {"a": 1, "b": 1}
    with pytest.raises(ValueError):
        GIB.from_importance(importance, sizes, 0, layers=("a",))
    with pytest.raises(ValueError):
        GIB.from_importance(importance, sizes, 0, layers=("a", "c"))
    with pytest.raises(ValueError):
        GIB.from_importance(importance, sizes, 0, layers=("a", "a"))


def test_from_importance_nan_budget_raises():
    with pytest.raises(ValueError):
        GIB.from_importance({"a": 1.0}, {"a": 1}, float("nan"))


def test_from_importance_zero_budget_all_important():
    gib = GIB.from_importance({"a": 1.0, "b": 2.0}, {"a": 10, "b": 10}, 0.0)
    assert gib.n_important == 2


def test_from_importance_defers_lowest_density_first():
    importance = {"big-dull": 1.0, "small-sharp": 1.0}
    sizes = {"big-dull": 100, "small-sharp": 1}
    gib = GIB.from_importance(importance, sizes, budget_bytes=100)
    # big-dull density 0.01 << small-sharp density 1.0
    assert not gib.is_important("big-dull")
    assert gib.is_important("small-sharp")


def test_from_importance_skips_oversized_layer():
    """A layer too big for the remaining budget is skipped, not a stopping
    point (smaller layers behind it still defer)."""
    importance = {"a": 0.1, "b": 0.2, "c": 0.3}
    sizes = {"a": 80, "b": 500, "c": 10}
    gib = GIB.from_importance(importance, sizes, budget_bytes=100)
    assert not gib.is_important("a")
    assert gib.is_important("b")  # 500 > 100-80
    assert not gib.is_important("c")


def test_from_importance_vgg_fc6_scenario():
    """The exact pathology from the reproduction: a huge low-importance
    classifier layer must be deferred even when many small layers have
    lower raw importance (density ordering, see gib.py docstring)."""
    importance = {"fc6": 0.3}
    sizes = {"fc6": 370}
    for i in range(12):
        importance[f"conv{i}"] = 0.15
        sizes[f"conv{i}"] = 10
    gib = GIB.from_importance(importance, sizes, budget_bytes=430)
    assert not gib.is_important("fc6")


def test_from_importance_mismatched_keys():
    with pytest.raises(ValueError):
        GIB.from_importance({"a": 1.0}, {"b": 1}, 10)


def test_from_importance_negative_budget():
    with pytest.raises(ValueError):
        GIB.from_importance({"a": 1.0}, {"a": 1}, -1)


@given(
    st.integers(min_value=1, max_value=20),
    st.integers(min_value=0, max_value=2**31 - 1),
    st.floats(min_value=0.0, max_value=2.0),
)
@settings(max_examples=100, deadline=None)
def test_property_from_importance_respects_budget(n_layers, seed, budget_frac):
    rng = np.random.default_rng(seed)
    layers = [f"l{i}" for i in range(n_layers)]
    importance = {l: float(rng.uniform(0.01, 10)) for l in layers}
    sizes = {l: int(rng.integers(1, 1000)) for l in layers}
    total = sum(sizes.values())
    budget = budget_frac * total
    gib = GIB.from_importance(importance, sizes, budget)
    deferred = sum(sizes[l] for l in gib.unimportant_layers)
    assert deferred <= budget + 1e-9


@given(st.integers(min_value=1, max_value=20), st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=100, deadline=None)
def test_property_full_budget_defers_everything(n_layers, seed):
    rng = np.random.default_rng(seed)
    layers = [f"l{i}" for i in range(n_layers)]
    importance = {l: float(rng.uniform(0.01, 10)) for l in layers}
    sizes = {l: int(rng.integers(1, 1000)) for l in layers}
    gib = GIB.from_importance(importance, sizes, sum(sizes.values()))
    assert gib.n_important == 0


@given(st.integers(min_value=2, max_value=16), st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=50, deadline=None)
def test_property_pack_roundtrip(n_layers, seed):
    rng = np.random.default_rng(seed)
    layers = tuple(f"l{i}" for i in range(n_layers))
    bits = tuple(bool(b) for b in rng.integers(0, 2, size=n_layers))
    gib = GIB(layers, bits)
    assert GIB.unpack(gib.pack(), layers).important == bits
