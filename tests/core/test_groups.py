"""Unit tests for multi-PS synchronization group planning (§6.1)."""

import pytest

from repro.core.groups import SyncGroupPlan, plan_sync_groups


def sizes(n=10, base=100):
    return {f"l{i}": base * (i + 1) for i in range(n)}


def test_plan_assigns_every_layer_once():
    plan = plan_sync_groups(sizes(), n_ps=3)
    assert set(plan.assignment) == set(sizes())
    assert all(0 <= ps < 3 for ps in plan.assignment.values())


def test_plan_single_ps_takes_all():
    s = sizes(5)
    plan = plan_sync_groups(s, n_ps=1)
    assert plan.max_shard_bytes == sum(s.values())
    assert plan.balance == pytest.approx(1.0)


def test_plan_shard_bytes_consistent_with_assignment():
    s = sizes(8)
    plan = plan_sync_groups(s, n_ps=4)
    recomputed = [0.0] * 4
    for layer, ps in plan.assignment.items():
        recomputed[ps] += s[layer]
    assert list(plan.shard_bytes) == recomputed


def test_plan_lpt_is_well_balanced():
    s = {f"l{i}": 10 for i in range(100)}
    plan = plan_sync_groups(s, n_ps=4)
    assert plan.balance < 1.05


def test_plan_more_ps_reduces_max_shard():
    s = sizes(20)
    m1 = plan_sync_groups(s, 1).max_shard_bytes
    m2 = plan_sync_groups(s, 2).max_shard_bytes
    m4 = plan_sync_groups(s, 4).max_shard_bytes
    assert m1 > m2 > m4


def test_predicted_bst_scaling_claim():
    """§6.1: multiple PSes divide the per-iteration sync time roughly by
    the PS count (for balanced shards)."""
    s = {f"l{i}": 1000 for i in range(64)}
    b1 = plan_sync_groups(s, 1).predicted_bst(8, 1e9)
    b4 = plan_sync_groups(s, 4).predicted_bst(8, 1e9)
    assert b4 == pytest.approx(b1 / 4, rel=0.05)


def test_predicted_bst_formula():
    plan = SyncGroupPlan(n_ps=1, assignment={"l": 0}, shard_bytes=(100.0,))
    assert plan.predicted_bst(4, 100.0) == pytest.approx(2 * 4 * 100 / 100)
    with pytest.raises(ValueError):
        plan.predicted_bst(0, 100.0)


def test_plan_validation():
    with pytest.raises(ValueError):
        plan_sync_groups(sizes(), 0)
    with pytest.raises(ValueError):
        plan_sync_groups({}, 2)


def test_plan_deterministic():
    s = sizes(15)
    a = plan_sync_groups(s, 3)
    b = plan_sync_groups(s, 3)
    assert a.assignment == b.assignment
