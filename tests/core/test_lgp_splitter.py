"""Unit tests for LGP correction (Eq. 6-7), EMA-LGP, and the splitter."""

import numpy as np
import pytest

from repro.core.gib import GIB
from repro.core.lgp import EMALGPCorrector, LGPCorrector
from repro.core.splitter import GradientSplitter
from repro.nn.models import MLP


# ------------------------------------------------------------------ LGP
def make_params():
    return {
        "imp.w": np.array([1.0, 1.0]),
        "unimp.w": np.array([2.0, 2.0]),
    }


def test_lgp_apply_rs_adopts_global_and_predicts_locally():
    params = make_params()
    lgp = LGPCorrector(params)
    lgp.apply_rs(
        important_global={"imp.w": np.array([5.0, 6.0])},
        unimportant_local_grads={"unimp.w": np.array([1.0, -1.0])},
        lr=0.5,
    )
    assert np.allclose(params["imp.w"], [5.0, 6.0])  # Eq 6 term 1
    assert np.allclose(params["unimp.w"], [1.5, 2.5])  # 2 - 0.5*g (Eq 6 term 2)


def test_lgp_apply_ics_overwrites_prediction():
    params = make_params()
    lgp = LGPCorrector(params)
    lgp.apply_rs({}, {"unimp.w": np.array([1.0, 1.0])}, lr=0.1)
    lgp.apply_ics({"unimp.w": np.array([7.0, 8.0])})
    assert np.allclose(params["unimp.w"], [7.0, 8.0])  # Eq 7


def test_lgp_eq7_equals_subtract_local_add_global():
    """Overwrite == P - lr*g_local + lr*g_global when bases align (Eq 7)."""
    base = np.array([2.0, 2.0])
    g_local = np.array([1.0, -1.0])
    g_global = np.array([0.5, 0.5])
    lr = 0.1
    params = {"u.w": base.copy()}
    lgp = LGPCorrector(params)
    lgp.apply_rs({}, {"u.w": g_local}, lr=lr)
    global_value = base - lr * g_global  # what the PS computed from base
    lgp.apply_ics({"u.w": global_value})
    expected = base - lr * g_local - lr * (g_global - g_local)
    assert np.allclose(params["u.w"], expected)


def test_lgp_unknown_param_raises():
    lgp = LGPCorrector(make_params())
    with pytest.raises(KeyError):
        lgp.apply_ics({"ghost": np.zeros(2)})


def test_lgp_bad_lr():
    lgp = LGPCorrector(make_params())
    with pytest.raises(ValueError):
        lgp.apply_rs({}, {}, lr=0.0)


def test_lgp_mutates_arrays_in_place():
    params = make_params()
    view = params["imp.w"]
    LGPCorrector(params).apply_rs({"imp.w": np.array([9.0, 9.0])}, {}, lr=0.1)
    assert np.allclose(view, [9.0, 9.0])


# ---------------------------------------------------------------- EMA-LGP
def test_ema_lgp_first_prediction_is_local():
    params = make_params()
    ema = EMALGPCorrector(params, beta=0.5, lr_hint=0.1)
    ema.apply_rs({}, {"unimp.w": np.array([1.0, 1.0])}, lr=0.1)
    assert np.allclose(params["unimp.w"], [1.9, 1.9])


def test_ema_lgp_learns_global_gradient():
    params = {"u.w": np.array([0.0])}
    ema = EMALGPCorrector(params, beta=1.0, decay=0.0, lr_hint=0.1)
    # Round 1: predict with local grad 0; global applied grad was 2.0.
    ema.apply_rs({}, {"u.w": np.array([0.0])}, lr=0.1)
    ema.apply_ics({"u.w": np.array([-0.2])})  # implies global grad 2.0
    # Round 2: beta=1 -> prediction is pure EMA = 2.0
    ema.apply_rs({}, {"u.w": np.array([0.0])}, lr=0.1)
    assert np.allclose(params["u.w"], [-0.2 - 0.1 * 2.0])


def test_ema_lgp_memory_overhead_tracked():
    params = make_params()
    ema = EMALGPCorrector(params, lr_hint=0.1)
    assert ema.memory_overhead_bytes == 0
    ema.apply_rs({}, {"unimp.w": np.zeros(2)}, lr=0.1)
    ema.apply_ics({"unimp.w": np.array([1.0, 1.0])})
    assert ema.memory_overhead_bytes == 16  # one float64[2]


def test_ema_lgp_validation():
    with pytest.raises(ValueError):
        EMALGPCorrector(make_params(), beta=2.0)
    with pytest.raises(ValueError):
        EMALGPCorrector(make_params(), decay=1.0)


# ---------------------------------------------------------------- splitter
def test_splitter_partitions_by_gib():
    sp = GradientSplitter({"a": ["a.w", "a.b"], "b": ["b.w"]})
    gib = GIB(("a", "b"), (True, False))
    grads = {"a.w": np.ones(1), "a.b": np.ones(1), "b.w": np.ones(1)}
    imp, unimp = sp.split(grads, gib)
    assert set(imp) == {"a.w", "a.b"}
    assert set(unimp) == {"b.w"}


def test_splitter_rejects_unknown_gradient():
    sp = GradientSplitter({"a": ["a.w"]})
    gib = GIB(("a",), (True,))
    with pytest.raises(KeyError):
        sp.split({"zzz": np.ones(1)}, gib)


def test_splitter_rejects_mismatched_gib():
    sp = GradientSplitter({"a": ["a.w"]})
    gib = GIB(("other",), (True,))
    with pytest.raises(ValueError):
        sp.split({"a.w": np.ones(1)}, gib)


def test_splitter_duplicate_param_rejected():
    with pytest.raises(ValueError):
        GradientSplitter({"a": ["w"], "b": ["w"]})


def test_splitter_params_of():
    sp = GradientSplitter({"a": ["a.w", "a.b"], "b": ["b.w"]})
    assert sp.params_of(["b", "a"]) == ("b.w", "a.w", "a.b")
    with pytest.raises(KeyError):
        sp.params_of(["nope"])


def test_splitter_layer_bytes():
    sp = GradientSplitter({"a": ["a.w"], "b": ["b.w"]})
    out = sp.layer_bytes({"a.w": 10, "b.w": 3}, bytes_per_param=4)
    assert out == {"a": 40, "b": 12}


def test_splitter_from_module_covers_all_params():
    model = MLP([4, 8, 2], seed=0)
    sp = GradientSplitter.from_module(model)
    all_names = {n for n, _ in model.named_parameters()}
    covered = {n for names in sp.layer_params.values() for n in names}
    assert covered == all_names


def test_splitter_from_module_layer_count_matches_leaf_layers():
    model = MLP([4, 8, 2], seed=0)
    sp = GradientSplitter.from_module(model)
    assert len(sp.layers) == len(model.leaf_layers())


def test_splitter_from_module_split_roundtrip():
    model = MLP([4, 8, 2], seed=0)
    sp = GradientSplitter.from_module(model)
    gib = GIB(sp.layers, tuple(i % 2 == 0 for i in range(len(sp.layers))))
    grads = {n: np.zeros(p.shape) for n, p in model.named_parameters()}
    imp, unimp = sp.split(grads, gib)
    assert set(imp) | set(unimp) == set(grads)
    assert not (set(imp) & set(unimp))
