"""Unit tests for PGP importance (Eq. 1-4), including the paper's Taylor
derivation validated against brute-force loss perturbation."""

import numpy as np
import pytest

from repro.core.pgp import (
    layer_importance,
    pgp_importance,
    taylor_reference_importance,
)


def test_pgp_importance_is_sum_abs_product():
    g = np.array([1.0, -2.0, 3.0])
    p = np.array([0.5, 0.5, -1.0])
    assert pgp_importance(g, p) == pytest.approx(0.5 + 1.0 + 3.0)


def test_pgp_importance_zero_param_contributes_nothing():
    assert pgp_importance(np.array([100.0]), np.array([0.0])) == 0.0


def test_pgp_importance_shape_mismatch():
    with pytest.raises(ValueError):
        pgp_importance(np.zeros(3), np.zeros(4))


def test_pgp_importance_nonnegative():
    rng = np.random.default_rng(0)
    for _ in range(10):
        g, p = rng.normal(size=8), rng.normal(size=8)
        assert pgp_importance(g, p) >= 0


def test_layer_importance_groups_parameters():
    grads = {"a.w": np.ones(2), "a.b": np.ones(1), "b.w": np.full(3, 2.0)}
    params = {"a.w": np.full(2, 3.0), "a.b": np.zeros(1), "b.w": np.ones(3)}
    out = layer_importance(grads, params, {"a": ["a.w", "a.b"], "b": ["b.w"]})
    assert out["a"] == pytest.approx(6.0)
    assert out["b"] == pytest.approx(6.0)


def test_layer_importance_missing_grad_raises():
    with pytest.raises(KeyError, match="no gradient"):
        layer_importance({}, {"w": np.zeros(1)}, {"l": ["w"]})


def test_layer_importance_missing_param_raises():
    with pytest.raises(KeyError, match="no value"):
        layer_importance({"w": np.zeros(1)}, {}, {"l": ["w"]})


def test_pgp_matches_first_order_taylor_on_quadratic():
    """For L(P) = sum(c * P^2), dL/dP_k = 2 c P_k; zeroing P_k changes L by
    c P_k^2. PGP approximates |dL/dP_k * P_k| = 2 c P_k^2 — first-order, so
    proportional (factor 2) to the true importance. Ordering must agree."""
    rng = np.random.default_rng(1)
    c = 0.7
    values = rng.normal(size=6)

    def loss(params):
        return c * float(sum((v**2).sum() for v in params.values()))

    params = {f"p{i}": np.array([values[i]]) for i in range(6)}
    grads = {name: 2 * c * v for name, v in params.items()}
    pgp_scores = {
        name: pgp_importance(grads[name], params[name]) for name in params
    }
    true_scores = {
        name: taylor_reference_importance(loss, params, name) for name in params
    }
    pgp_rank = sorted(params, key=lambda n: pgp_scores[n])
    true_rank = sorted(params, key=lambda n: true_scores[n])
    assert pgp_rank == true_rank
    for name in params:
        assert pgp_scores[name] == pytest.approx(2 * true_scores[name])


def test_pgp_taylor_accuracy_on_smooth_nonlinear_loss():
    """On a smooth loss, PGP ranks parameters like the exact zeroing test
    does for small parameter values (first-order regime)."""
    rng = np.random.default_rng(2)
    w = rng.normal(size=5) * 0.1
    a = rng.uniform(1, 3, size=5)

    def loss(params):
        vec = np.array([params[f"p{i}"][0] for i in range(5)])
        return float(np.sum(a * np.tanh(vec) ** 2))

    params = {f"p{i}": np.array([w[i]]) for i in range(5)}
    # analytic gradient of a*tanh(x)^2: 2 a tanh(x) (1 - tanh^2 x)
    grads = {
        f"p{i}": np.array(
            [2 * a[i] * np.tanh(w[i]) * (1 - np.tanh(w[i]) ** 2)]
        )
        for i in range(5)
    }
    pgp_rank = sorted(
        params, key=lambda n: pgp_importance(grads[n], params[n])
    )
    true_rank = sorted(
        params, key=lambda n: taylor_reference_importance(loss, params, n)
    )
    assert pgp_rank == true_rank
