"""Unit tests for Eq. 5 and Algorithm 1 (S(G^u) tuning)."""

import pytest

from repro.core.tuning import MAX_MODEL_FRACTION, SGuTuner, ics_upper_bound


def test_umax_formula_lossless():
    # b=1.25e9 B/s, T_c=0.8s, N=8 -> 125 MB
    u = ics_upper_bound(1.25e9, 0.0, 0.8, 8, model_bytes=1e12)
    assert u == pytest.approx(1.25e9 * 0.8 / 8)


def test_umax_capped_at_80pct_of_model():
    u = ics_upper_bound(1e12, 0.0, 10.0, 1, model_bytes=100.0)
    assert u == pytest.approx(80.0)
    assert MAX_MODEL_FRACTION == 0.8  # Algorithm 1 line 2 (paper value)


def test_umax_lossier_link_admits_less():
    clean = ics_upper_bound(1e9, 0.0, 1.0, 4, model_bytes=1e12)
    lossy = ics_upper_bound(1e9, 0.2, 1.0, 4, model_bytes=1e12)
    assert lossy < clean


def test_umax_scales_with_compute_time():
    a = ics_upper_bound(1e9, 0.0, 1.0, 4, 1e12)
    b = ics_upper_bound(1e9, 0.0, 2.0, 4, 1e12)
    assert b == pytest.approx(2 * a)


def test_umax_inverse_in_workers():
    a = ics_upper_bound(1e9, 0.0, 1.0, 2, 1e12)
    b = ics_upper_bound(1e9, 0.0, 1.0, 4, 1e12)
    assert a == pytest.approx(2 * b)


def test_umax_custom_fraction():
    u = ics_upper_bound(1e12, 0.0, 10.0, 1, model_bytes=100.0, max_model_fraction=0.5)
    assert u == pytest.approx(50.0)


def test_umax_validation():
    with pytest.raises(ValueError):
        ics_upper_bound(0, 0, 1, 1, 1)
    with pytest.raises(ValueError):
        ics_upper_bound(1, 1.0, 1, 1, 1)
    with pytest.raises(ValueError):
        ics_upper_bound(1, 0, -1, 1, 1)
    with pytest.raises(ValueError):
        ics_upper_bound(1, 0, 1, 0, 1)
    with pytest.raises(ValueError):
        ics_upper_bound(1, 0, 1, 1, 0)
    with pytest.raises(ValueError):
        ics_upper_bound(1, 0, 1, 1, 1, max_model_fraction=0)


# ------------------------------------------------------------- Algorithm 1
def test_tuner_first_epoch_budget_zero():
    t = SGuTuner(u_max=100.0)
    assert t.budget(2.5) == 0.0
    assert t.initial_loss == 2.5


def test_tuner_ramp_follows_algorithm1_formula():
    t = SGuTuner(u_max=100.0)
    t.budget(2.0)  # L = 2.0
    assert t.budget(1.0) == pytest.approx(50.0)  # (1 - 1/2) * 100
    assert t.budget(0.5) == pytest.approx(75.0)
    assert t.budget(0.0) == pytest.approx(100.0)


def test_tuner_loss_regression_floors_at_zero():
    t = SGuTuner(u_max=100.0)
    t.budget(1.0)
    assert t.budget(1.5) == 0.0  # worse than L -> no deferral


def test_tuner_budget_never_exceeds_umax():
    t = SGuTuner(u_max=42.0)
    t.budget(3.0)
    for loss in [2.0, 1.0, 0.1, 0.0]:
        assert 0.0 <= t.budget(loss) <= 42.0


def test_tuner_zero_initial_loss_degenerate():
    t = SGuTuner(u_max=10.0)
    assert t.budget(0.0) == 10.0  # already converged -> defer maximally


def test_tuner_reset():
    t = SGuTuner(u_max=10.0)
    t.budget(2.0)
    t.reset()
    assert t.initial_loss is None
    assert t.budget(4.0) == 0.0
    assert t.initial_loss == 4.0


def test_tuner_validation():
    with pytest.raises(ValueError):
        SGuTuner(u_max=-1.0)
    t = SGuTuner(10.0)
    with pytest.raises(ValueError):
        t.budget(-0.1)


def test_tuner_nan_loss_defers_nothing_and_leaves_ramp_state():
    """A diverged/overflowed epoch loss (NaN or inf) must fall back to the
    all-RS floor, not poison initial_loss or propagate NaN into Eq. 5."""
    t = SGuTuner(u_max=100.0)
    assert t.budget(float("nan")) == 0.0
    assert t.initial_loss is None  # NaN never becomes the ramp baseline
    t.budget(2.0)
    assert t.budget(float("nan")) == 0.0
    assert t.budget(float("inf")) == 0.0
    assert t.initial_loss == 2.0  # ramp state untouched by the bad epochs
    assert t.budget(1.0) == pytest.approx(50.0)  # ramp resumes where it was


def test_tuner_rejects_non_finite_umax():
    for bad in (float("nan"), float("inf")):
        with pytest.raises(ValueError):
            SGuTuner(u_max=bad)


def test_umax_rejects_non_finite_inputs():
    with pytest.raises(ValueError):
        ics_upper_bound(float("nan"), 0.0, 1.0, 4, 1e12)
    with pytest.raises(ValueError):
        ics_upper_bound(1e9, 0.0, float("inf"), 4, 1e12)
    with pytest.raises(ValueError):
        ics_upper_bound(1e9, 0.0, 1.0, 4, float("nan"))


def test_tuner_monotone_budget_for_monotone_loss():
    t = SGuTuner(u_max=100.0)
    t.budget(2.0)
    budgets = [t.budget(l) for l in [1.8, 1.5, 1.0, 0.6, 0.3, 0.1]]
    assert budgets == sorted(budgets)
