"""Unit tests for datasets, sharding, and batch loading."""

import numpy as np
import pytest

from repro.data import (
    ANSWER_VOCAB_RANGE,
    BatchLoader,
    Dataset,
    make_extractive_qa,
    make_image_classification,
    shard_dirichlet,
    shard_iid,
    train_test_split,
)


# ---------------------------------------------------------------- Dataset
def test_dataset_basic_invariants():
    ds = Dataset(np.zeros((10, 3)), np.zeros(10, dtype=int))
    assert len(ds) == 10
    assert ds.n_classes == 1


def test_dataset_length_mismatch():
    with pytest.raises(ValueError):
        Dataset(np.zeros((10, 3)), np.zeros(9, dtype=int))


def test_dataset_unknown_task():
    with pytest.raises(ValueError):
        Dataset(np.zeros((2, 3)), np.zeros(2), task="regression")


def test_dataset_qa_target_shape_enforced():
    with pytest.raises(ValueError):
        Dataset(np.zeros((4, 8), dtype=int), np.zeros(4, dtype=int), task="qa")


def test_dataset_n_classes_rejected_for_qa():
    ds = Dataset(np.zeros((4, 8), dtype=int), np.zeros((4, 2), dtype=int), task="qa")
    with pytest.raises(ValueError):
        _ = ds.n_classes


def test_subset_copies():
    ds = Dataset(np.arange(10, dtype=float).reshape(10, 1), np.arange(10) % 2)
    sub = ds.subset(np.array([0, 2]))
    assert len(sub) == 2
    sub.inputs[...] = -1
    assert ds.inputs[0, 0] == 0.0


def test_train_test_split_fractions_and_disjoint():
    ds = make_image_classification(100, n_classes=4, image_size=4, seed=0)
    train, test = train_test_split(ds, test_fraction=0.25, seed=1)
    assert len(train) == 75 and len(test) == 25
    with pytest.raises(ValueError):
        train_test_split(ds, test_fraction=0.0)


# --------------------------------------------------------- synthetic images
def test_image_dataset_shapes_and_balance():
    ds = make_image_classification(200, n_classes=10, image_size=8, seed=0)
    assert ds.inputs.shape == (200, 3, 8, 8)
    counts = np.bincount(ds.targets, minlength=10)
    assert counts.max() - counts.min() <= 1


def test_image_dataset_deterministic():
    a = make_image_classification(50, seed=3)
    b = make_image_classification(50, seed=3)
    assert np.array_equal(a.inputs, b.inputs)
    assert np.array_equal(a.targets, b.targets)


def test_image_dataset_noise_controls_separability():
    """Nearest-prototype classification should be easier at low noise."""
    def separability(noise):
        ds = make_image_classification(300, n_classes=5, image_size=8, noise=noise, seed=0)
        # Estimate prototypes on one half, classify the other half.
        half = len(ds) // 2
        fit, ev = ds.subset(np.arange(half)), ds.subset(np.arange(half, len(ds)))
        protos = np.stack(
            [fit.inputs[fit.targets == c].mean(axis=0) for c in range(5)]
        )
        dists = ((ev.inputs[:, None] - protos[None]) ** 2).sum(axis=(2, 3, 4))
        return (dists.argmin(axis=1) == ev.targets).mean()

    assert separability(0.5) > separability(12.0)


def test_image_dataset_validation():
    with pytest.raises(ValueError):
        make_image_classification(5, n_classes=10)
    with pytest.raises(ValueError):
        make_image_classification(10, n_classes=1)


# --------------------------------------------------------------- synthetic QA
def test_qa_dataset_shapes():
    ds = make_extractive_qa(100, seq_len=16, seed=0)
    assert ds.inputs.shape == (100, 16)
    assert ds.targets.shape == (100, 2)
    assert ds.task == "qa"


def test_qa_spans_are_answer_vocab():
    lo, hi = ANSWER_VOCAB_RANGE
    ds = make_extractive_qa(50, seq_len=12, noise_flip_prob=0.0, seed=1)
    for tokens, (start, end) in zip(ds.inputs, ds.targets):
        assert 0 <= start <= end < 12
        assert np.all((tokens[start : end + 1] >= lo) & (tokens[start : end + 1] < hi))


def test_qa_context_outside_answer_vocab_when_no_noise():
    lo, hi = ANSWER_VOCAB_RANGE
    ds = make_extractive_qa(50, seq_len=12, noise_flip_prob=0.0, seed=2)
    for tokens, (start, end) in zip(ds.inputs, ds.targets):
        outside = np.r_[tokens[:start], tokens[end + 1 :]]
        assert np.all(outside >= hi)


def test_qa_validation():
    with pytest.raises(ValueError):
        make_extractive_qa(10, vocab_size=8)
    with pytest.raises(ValueError):
        make_extractive_qa(10, seq_len=4, max_answer_len=8)


def test_qa_deterministic():
    a = make_extractive_qa(30, seed=9)
    b = make_extractive_qa(30, seed=9)
    assert np.array_equal(a.inputs, b.inputs)


# ----------------------------------------------------------------- sharding
def test_shard_iid_covers_all_samples_once():
    ds = make_image_classification(101, n_classes=4, image_size=4, seed=0)
    shards = shard_iid(ds, 8, seed=0)
    assert sum(len(s) for s in shards) == 101
    assert max(len(s) for s in shards) - min(len(s) for s in shards) <= 1


def test_shard_iid_roughly_balanced_classes():
    ds = make_image_classification(400, n_classes=4, image_size=4, seed=0)
    shards = shard_iid(ds, 4, seed=0)
    for s in shards:
        counts = np.bincount(s.targets, minlength=4)
        assert counts.min() > 10  # IID: every class well represented


def test_shard_iid_validation():
    ds = make_image_classification(10, n_classes=2, image_size=4)
    with pytest.raises(ValueError):
        shard_iid(ds, 0)
    with pytest.raises(ValueError):
        shard_iid(ds, 11)


def test_shard_dirichlet_skews_classes():
    ds = make_image_classification(600, n_classes=6, image_size=4, seed=0)
    shards = shard_dirichlet(ds, 6, alpha=0.1, seed=0)
    assert sum(len(s) for s in shards) == 600
    # With alpha=0.1 at least one worker should be heavily skewed.
    max_frac = 0.0
    for s in shards:
        counts = np.bincount(s.targets, minlength=6)
        max_frac = max(max_frac, counts.max() / max(1, counts.sum()))
    assert max_frac > 0.5


def test_shard_dirichlet_every_worker_nonempty():
    ds = make_image_classification(60, n_classes=3, image_size=4, seed=0)
    shards = shard_dirichlet(ds, 10, alpha=0.05, seed=1)
    assert all(len(s) >= 1 for s in shards)


def test_shard_dirichlet_validation():
    ds = make_image_classification(20, n_classes=2, image_size=4)
    qa = make_extractive_qa(20)
    with pytest.raises(ValueError):
        shard_dirichlet(qa, 2)
    with pytest.raises(ValueError):
        shard_dirichlet(ds, 2, alpha=0)


# ------------------------------------------------------------------ loader
def test_loader_batch_shapes_and_count():
    ds = make_image_classification(100, n_classes=4, image_size=4, seed=0)
    loader = BatchLoader(ds, batch_size=16, seed=0)
    assert loader.batches_per_epoch == 6
    batches = list(loader.epoch(0))
    assert len(batches) == 6
    assert batches[0][0].shape == (16, 3, 4, 4)


def test_loader_epoch_reshuffles():
    ds = make_image_classification(64, n_classes=4, image_size=4, seed=0)
    loader = BatchLoader(ds, batch_size=32, seed=0)
    e0 = next(iter(loader.epoch(0)))[1]
    e1 = next(iter(loader.epoch(1)))[1]
    assert not np.array_equal(e0, e1)


def test_loader_same_epoch_deterministic():
    ds = make_image_classification(64, n_classes=4, image_size=4, seed=0)
    loader = BatchLoader(ds, batch_size=32, seed=0)
    a = next(iter(loader.epoch(5)))[0]
    b = next(iter(loader.epoch(5)))[0]
    assert np.array_equal(a, b)


def test_loader_random_access_matches_iterator():
    ds = make_image_classification(64, n_classes=4, image_size=4, seed=0)
    loader = BatchLoader(ds, batch_size=16, seed=3)
    for i, (x_iter, y_iter) in enumerate(loader.epoch(2)):
        x_ra, y_ra = loader.batch(2, i)
        assert np.array_equal(x_iter, x_ra)
        assert np.array_equal(y_iter, y_ra)


def test_loader_drop_last_false_includes_tail():
    ds = make_image_classification(50, n_classes=2, image_size=4, seed=0)
    loader = BatchLoader(ds, batch_size=16, seed=0, drop_last=False)
    sizes = [len(x) for x, _y in loader.epoch(0)]
    assert sizes == [16, 16, 16, 2]


def test_loader_validation():
    ds = make_image_classification(10, n_classes=2, image_size=4)
    with pytest.raises(ValueError):
        BatchLoader(ds, batch_size=0)
    with pytest.raises(ValueError):
        BatchLoader(ds, batch_size=16)  # bigger than shard with drop_last
    loader = BatchLoader(ds, batch_size=4)
    with pytest.raises(IndexError):
        loader.batch(0, 99)
