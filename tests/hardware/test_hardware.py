"""Unit tests for GPU specs, compute model, and jitter models."""

import numpy as np
import pytest

from repro.hardware import (
    ComputeModel,
    GPU_CATALOG,
    GPUSpec,
    LognormalJitter,
    NoJitter,
    PersistentStraggler,
)
from repro.hardware.gpu import get_gpu


# ------------------------------------------------------------------- GPUs
def test_catalog_contains_paper_gpus():
    for name in ["tesla-t4", "rtx2080ti", "rtx3090"]:
        assert name in GPU_CATALOG


def test_paper_quoted_tflops():
    """The paper quotes these exact numbers in §1."""
    assert GPU_CATALOG["rtx2080ti"].tflops == 13.45
    assert GPU_CATALOG["rtx3090"].tflops == 35.58


def test_get_gpu_unknown_raises_with_suggestions():
    with pytest.raises(KeyError, match="tesla-t4"):
        get_gpu("gtx-does-not-exist")


def test_gpuspec_validation():
    with pytest.raises(ValueError):
        GPUSpec("bad", tflops=0)
    with pytest.raises(ValueError):
        GPUSpec("bad", tflops=1, efficiency=0)
    with pytest.raises(ValueError):
        GPUSpec("bad", tflops=1, efficiency=1.5)


def test_achieved_flops():
    g = GPUSpec("x", tflops=10.0, efficiency=0.5)
    assert g.achieved_flops == pytest.approx(5e12)


# ----------------------------------------------------------- ComputeModel
def test_iteration_time_scales_with_batch():
    cm = ComputeModel(get_gpu("tesla-t4"), fixed_overhead=0.0)
    t1 = cm.iteration_time(1e9, batch_size=32)
    t2 = cm.iteration_time(1e9, batch_size=64)
    assert t2 == pytest.approx(2 * t1)


def test_iteration_time_inverse_in_gpu_speed():
    slow = ComputeModel(GPUSpec("s", tflops=10.0), fixed_overhead=0.0)
    fast = ComputeModel(GPUSpec("f", tflops=20.0), fixed_overhead=0.0)
    assert slow.iteration_time(1e9, 8) == pytest.approx(
        2 * fast.iteration_time(1e9, 8)
    )


def test_iteration_time_includes_overhead():
    cm = ComputeModel(get_gpu("tesla-t4"), fixed_overhead=0.01)
    cm0 = ComputeModel(get_gpu("tesla-t4"), fixed_overhead=0.0)
    assert cm.iteration_time(1e9, 8) == pytest.approx(
        cm0.iteration_time(1e9, 8) + 0.01
    )


def test_forward_time_is_third_of_compute():
    cm = ComputeModel(get_gpu("tesla-t4"), fixed_overhead=0.0)
    assert cm.iteration_time(1e9, 8) == pytest.approx(3 * cm.forward_time(1e9, 8))


def test_compute_model_validation():
    cm = ComputeModel(get_gpu("tesla-t4"))
    with pytest.raises(ValueError):
        cm.iteration_time(0, 8)
    with pytest.raises(ValueError):
        cm.iteration_time(1e9, 0)
    with pytest.raises(ValueError):
        ComputeModel(get_gpu("tesla-t4"), fixed_overhead=-1)


def test_pgp_time_small_vs_training():
    """PGP must be cheap relative to an iteration (paper's §4.4 claim is
    3-8% overhead for param-heavy models)."""
    cm = ComputeModel(get_gpu("tesla-t4"), fixed_overhead=0.0)
    t_iter = cm.iteration_time(4e9, 64)  # ResNet50-ish
    t_pgp = cm.pgp_time(n_params=25_000_000, n_layers=161)
    assert t_pgp < 0.25 * t_iter


def test_pgp_time_scales_with_params():
    cm = ComputeModel(get_gpu("tesla-t4"))
    assert cm.pgp_time(2_000_000, 100) > cm.pgp_time(1_000_000, 100)
    with pytest.raises(ValueError):
        cm.pgp_time(-1, 10)


# ----------------------------------------------------------------- Jitter
def test_no_jitter_identity():
    assert NoJitter().sample(1.5, worker=3, iteration=7) == 1.5


def test_lognormal_jitter_deterministic_per_seed():
    j1 = LognormalJitter(sigma=0.3, seed=42)
    j2 = LognormalJitter(sigma=0.3, seed=42)
    for w in range(4):
        for i in range(10):
            assert j1.sample(1.0, w, i) == j2.sample(1.0, w, i)


def test_lognormal_jitter_reask_consistent():
    j = LognormalJitter(sigma=0.3, seed=1)
    a = j.sample(1.0, 0, 0)
    b = j.sample(1.0, 0, 0)
    assert a == b


def test_lognormal_jitter_different_seeds_differ():
    a = LognormalJitter(sigma=0.3, seed=1).sample(1.0, 0, 0)
    b = LognormalJitter(sigma=0.3, seed=2).sample(1.0, 0, 0)
    assert a != b


def test_lognormal_jitter_sigma_zero_is_identity():
    j = LognormalJitter(sigma=0.0, seed=0)
    assert j.sample(2.0, 1, 1) == pytest.approx(2.0)


def test_lognormal_jitter_median_near_base():
    j = LognormalJitter(sigma=0.4, seed=0)
    samples = [j.sample(1.0, 0, i) for i in range(2000)]
    assert np.median(samples) == pytest.approx(1.0, rel=0.1)


def test_lognormal_jitter_positive():
    j = LognormalJitter(sigma=1.0, seed=3)
    assert all(j.sample(1.0, 0, i) > 0 for i in range(100))


def test_lognormal_jitter_validation():
    with pytest.raises(ValueError):
        LognormalJitter(sigma=-0.1)


def test_persistent_straggler_slows_selected_workers():
    m = PersistentStraggler(slow_workers=[2], slow_factor=3.0)
    assert m.sample(1.0, 2, 0) == pytest.approx(3.0)
    assert m.sample(1.0, 0, 0) == pytest.approx(1.0)


def test_persistent_straggler_composes_with_inner():
    inner = LognormalJitter(sigma=0.2, seed=0)
    m = PersistentStraggler(slow_workers=[1], slow_factor=2.0, inner=inner)
    assert m.sample(1.0, 1, 5) == pytest.approx(2.0 * inner.sample(1.0, 1, 5))


def test_persistent_straggler_validation():
    with pytest.raises(ValueError):
        PersistentStraggler(slow_workers=[0], slow_factor=0.5)


def test_barrier_penalty_grows_with_sigma():
    """Mean-of-max over workers (BSP cost) grows with jitter; mean
    per-worker (ASP cost) stays ~constant — the Fig. 1 vs Fig. 2 mechanism."""
    def mean_max(sigma):
        j = LognormalJitter(sigma=sigma, seed=7)
        maxima = []
        for it in range(300):
            maxima.append(max(j.sample(1.0, w, it) for w in range(8)))
        return float(np.mean(maxima))

    assert mean_max(0.5) > mean_max(0.1) > 1.0
