"""Micro-scale smoke tests of the figure functions (full scale runs live
in benchmarks/)."""

import pytest

from repro.harness.figures import (
    fig1_fig2_timelines,
    fig6a_throughput,
    fig6d_bst,
    fig9_bct_colocated,
)


def test_fig6a_rows_structure():
    rows = fig6a_throughput(quick=True, workloads=["resnet50-cifar10"])
    assert len(rows) == 4  # four sync models
    names = {r[1] for r in rows}
    assert names == {"asp", "bsp", "r2sp", "osp"}
    for _w, _s, overall, steady in rows:
        assert overall > 0 and steady > 0


def test_fig6d_rows_structure():
    rows = fig6d_bst(quick=True, workloads=["resnet50-cifar10"])
    assert len(rows) == 4
    for _w, _s, mean_bst, steady_bst in rows:
        assert mean_bst > 0 and steady_bst > 0


def test_fig9_single_workload():
    rows = fig9_bct_colocated(quick=True, workloads=["inceptionv3-cifar100"])
    assert len(rows) == 1
    _w, bct_bsp, bct_osp_s, bct_osp_c, overhead = rows[0]
    assert bct_osp_s == pytest.approx(bct_bsp, rel=0.01)
    assert bct_osp_c > bct_bsp
    assert overhead > 0


def test_fig1_fig2_returns_records_and_ratio():
    data = fig1_fig2_timelines(quick=True)
    assert set(data["timelines"]) == {"bsp", "asp"}
    assert data["bsp_over_asp"] > 1.0
    assert all(len(v) > 0 for v in data["records"].values())
