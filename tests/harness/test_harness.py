"""Tests for the workload/figure harness (small configurations)."""

import numpy as np
import pytest

from repro.core import OSP
from repro.harness import (
    EVALUATION_WORKLOADS,
    WorkloadConfig,
    make_numeric_dataset,
    numeric_trainer,
    timing_trainer,
)
from repro.harness.figures import (
    fig3_comm_share,
    motivation_gpu_comm,
    paper_sync_models,
)
from repro.nn.models import get_card
from repro.sync import BSP


def test_evaluation_workloads_are_the_papers_five():
    assert EVALUATION_WORKLOADS == (
        "resnet50-cifar10",
        "vgg16-cifar10",
        "inceptionv3-cifar100",
        "resnet101-imagenet",
        "bertbase-squad",
    )


def test_paper_sync_models_fresh_instances():
    a, b = paper_sync_models(), paper_sync_models()
    assert [m.name for m in a] == ["asp", "bsp", "r2sp", "osp"]
    assert all(x is not y for x, y in zip(a, b))


def test_workload_config_properties():
    cfg = WorkloadConfig("vgg16-cifar10", n_epochs=3, iterations_per_epoch=5)
    assert cfg.card.name == "vgg16-cifar10"
    assert cfg.total_iterations == 15


def test_timing_trainer_builds_and_runs():
    cfg = WorkloadConfig(
        "resnet50-cifar10", n_workers=2, n_epochs=2, iterations_per_epoch=2
    )
    res = timing_trainer(cfg, BSP()).run()
    assert res.recorder.total_iterations == 8


def test_numeric_dataset_matches_card_task():
    qa = make_numeric_dataset(get_card("bertbase-squad"), n_samples=60)
    assert qa[0].task == "qa"
    img = make_numeric_dataset(get_card("resnet50-cifar10"), n_samples=60)
    assert img[0].task == "classification"
    assert img[0].n_classes == 10
    c100 = make_numeric_dataset(get_card("inceptionv3-cifar100"), n_samples=80)
    assert c100[0].n_classes == 20


def test_numeric_trainer_runs_all_cards_one_epoch():
    for name in EVALUATION_WORKLOADS:
        cfg = WorkloadConfig(name, n_workers=2, n_epochs=1, seed=0)
        data = make_numeric_dataset(cfg.card, n_samples=120, seed=0)
        res = numeric_trainer(cfg, OSP(), data=data, batch_size=10).run()
        assert res.recorder.total_iterations > 0, name


def test_fig3_rows_shape():
    rows = fig3_comm_share(quick=True, node_counts=(1, 2))
    assert [r[0] for r in rows] == [1, 2]
    for _n, bct, bst, share in rows:
        assert bct > 0 and bst > 0 and 0 < share < 1


def test_motivation_rows():
    rows = motivation_gpu_comm()
    assert [r[0] for r in rows] == ["rtx2080ti", "rtx3090"]
    assert rows[1][3] > rows[0][3]  # faster GPU, bigger comm share
