"""Tests for multi-seed statistics and BST percentiles."""

import pytest

from repro.harness import WorkloadConfig, timing_trainer
from repro.harness.stats import MultiSeedResult, SeedStats, run_seeds
from repro.metrics.recorder import IterationRecord, Recorder
from repro.sync import BSP
from repro.core import OSP


def test_seedstats_aggregation():
    s = SeedStats((1.0, 2.0, 3.0))
    assert s.mean == pytest.approx(2.0)
    assert s.min == 1.0 and s.max == 3.0
    assert "±" in str(s)


def test_seedstats_rejects_empty_values():
    # Regression: an empty tuple used to construct fine and then blow up
    # (or emit NaN warnings) on first property access; fail fast instead.
    with pytest.raises(ValueError, match="at least one value"):
        SeedStats(())


def test_run_seeds_requires_seeds():
    with pytest.raises(ValueError):
        run_seeds(lambda s: None, [])


def _factory(seed):
    cfg = WorkloadConfig(
        "resnet50-cifar10",
        n_workers=4,
        n_epochs=3,
        iterations_per_epoch=3,
        sigma=0.3,
        seed=seed,
    )
    return timing_trainer(cfg, BSP())


def test_run_seeds_aggregates_across_seeds():
    stats = run_seeds(_factory, seeds=[0, 1, 2])
    assert len(stats.throughput.values) == 3
    assert stats.throughput.mean > 0
    # different jitter seeds -> some spread
    assert stats.throughput.std > 0


def test_run_seeds_same_seed_zero_variance():
    stats = run_seeds(_factory, seeds=[5, 5])
    assert stats.throughput.std == pytest.approx(0.0)


def test_osp_beats_bsp_across_seeds():
    """Seed-robustness of the headline claim (small-scale)."""
    def factory(sync):
        def build(seed):
            cfg = WorkloadConfig(
                "resnet50-cifar10",
                n_workers=4,
                n_epochs=10,
                iterations_per_epoch=4,
                sigma=0.2,
                seed=seed,
            )
            return timing_trainer(cfg, sync())
        return build

    seeds = [0, 1, 2]
    osp = run_seeds(factory(OSP), seeds)
    bsp = run_seeds(factory(BSP), seeds)
    assert osp.throughput.min > bsp.throughput.max


# ----------------------------------------------------------- percentiles
def test_bst_percentile_basic():
    rec = Recorder()
    for i, s in enumerate([0.1, 0.2, 0.3, 0.4]):
        rec.record_iteration(
            IterationRecord(
                worker=0, iteration=i, start_time=float(i), compute_time=1.0,
                sync_time=s, loss=1.0, samples=1,
            )
        )
    assert rec.bst_percentile(0) == pytest.approx(0.1)
    assert rec.bst_percentile(100) == pytest.approx(0.4)
    assert rec.bst_percentile(50) == pytest.approx(0.25)


def test_bst_percentile_validation_and_empty():
    rec = Recorder()
    assert rec.bst_percentile(99) == 0.0
    with pytest.raises(ValueError):
        rec.bst_percentile(150)


def test_bsp_has_heavier_bst_tail_than_osp():
    """Incast + barrier give BSP a wider p99/p50 spread than late-stage OSP."""
    def run(sync):
        cfg = WorkloadConfig(
            "resnet50-cifar10", n_workers=8, n_epochs=12,
            iterations_per_epoch=4, sigma=0.3, seed=0,
        )
        return timing_trainer(cfg, sync).run().recorder

    bsp = run(BSP())
    assert bsp.bst_percentile(99) > bsp.bst_percentile(50)
