"""Unit tests for the sweep module."""

import pytest

from repro.harness.sweep import (
    SweepPoint,
    speedup_over,
    sweep_bandwidth,
    sweep_jitter,
    sweep_workers,
)
from repro.sync import ASP, BSP


def test_sweep_bandwidth_points_shape():
    pts = sweep_bandwidth([BSP], [1e9, 1e10], epochs=2, ipe=2, n_workers=2)
    assert len(pts) == 2
    assert {p.value for p in pts} == {1e9, 1e10}
    assert all(p.knob == "bandwidth" for p in pts)
    assert all(p.throughput > 0 for p in pts)


def test_sweep_rho_scales_with_bandwidth():
    pts = sweep_bandwidth([BSP], [1e9, 1e10], epochs=2, ipe=2, n_workers=2)
    by_bw = {p.value: p.comm_compute_ratio for p in pts}
    assert by_bw[1e10] == pytest.approx(10 * by_bw[1e9])


def test_sweep_workers_rho_inverse_in_n():
    pts = sweep_workers([BSP], [2, 4], epochs=2, ipe=2)
    by_n = {p.value: p.comm_compute_ratio for p in pts}
    assert by_n[2] == pytest.approx(2 * by_n[4])


def test_sweep_jitter_runs():
    pts = sweep_jitter([BSP], [0.0, 0.3], epochs=2, ipe=2, n_workers=2)
    assert {p.value for p in pts} == {0.0, 0.3}


def test_speedup_over_pairs():
    pts = [
        SweepPoint("bandwidth", 1.0, "bsp", 100.0, 0.1, 1.0),
        SweepPoint("bandwidth", 1.0, "osp", 150.0, 0.05, 1.0),
        SweepPoint("bandwidth", 2.0, "bsp", 200.0, 0.1, 2.0),
        SweepPoint("bandwidth", 2.0, "osp", 220.0, 0.05, 2.0),
    ]
    out = speedup_over(pts, "bsp", "osp")
    assert out == [(1.0, 1.5), (2.0, pytest.approx(1.1))]


def test_speedup_over_missing_base_skipped():
    pts = [SweepPoint("bandwidth", 1.0, "osp", 150.0, 0.05, 1.0)]
    assert speedup_over(pts, "bsp", "osp") == []


def test_sweep_throughput_rises_with_bandwidth():
    pts = sweep_bandwidth([ASP], [1e8, 1e10], epochs=3, ipe=3, n_workers=4)
    by_bw = {p.value: p.throughput for p in pts}
    assert by_bw[1e10] > by_bw[1e8]
