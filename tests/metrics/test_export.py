"""Tests for recorder JSON export/import."""

import json

import pytest

from repro.metrics.export import (
    load_recorder,
    recorder_from_dict,
    recorder_to_dict,
    save_recorder,
)
from repro.metrics.recorder import EpochRecord, IterationRecord, Recorder


def make_recorder():
    rec = Recorder()
    rec.record_iteration(
        IterationRecord(
            worker=0, iteration=0, start_time=0.0, compute_time=1.0,
            sync_time=0.5, loss=2.0, samples=64,
        )
    )
    rec.record_epoch(
        EpochRecord(epoch=0, time=1.5, train_loss=2.0, metric=0.4, iterations_done=1)
    )
    return rec


def test_roundtrip_dict():
    rec = make_recorder()
    clone = recorder_from_dict(recorder_to_dict(rec))
    assert clone.iterations == rec.iterations
    assert clone.epochs == rec.epochs


def test_summary_present_and_consistent():
    d = recorder_to_dict(make_recorder())
    assert d["summary"]["total_iterations"] == 1
    assert d["summary"]["best_metric"] == pytest.approx(0.4)
    assert d["summary"]["throughput"] == pytest.approx(64 / 1.5)


def test_dict_is_json_serialisable():
    json.dumps(recorder_to_dict(make_recorder()))


def test_file_roundtrip(tmp_path):
    rec = make_recorder()
    path = tmp_path / "run.json"
    save_recorder(rec, path)
    loaded = load_recorder(path)
    assert loaded.iterations == rec.iterations
    assert loaded.throughput() == pytest.approx(rec.throughput())


def test_empty_recorder_roundtrip(tmp_path):
    path = tmp_path / "empty.json"
    save_recorder(Recorder(), path)
    loaded = load_recorder(path)
    assert loaded.total_iterations == 0


def test_from_dict_tolerates_missing_sections():
    rec = recorder_from_dict({})
    assert rec.total_iterations == 0


def test_real_run_roundtrips(tmp_path):
    """End-to-end: a real trainer's recorder survives the JSON roundtrip."""
    from repro.cluster import (
        ClusterSpec,
        DistributedTrainer,
        TimingEngine,
        TrainingPlan,
    )
    from repro.hardware import NoJitter
    from repro.nn.models import get_card
    from repro.sync import BSP

    spec = ClusterSpec(n_workers=2, jitter=NoJitter())
    plan = TrainingPlan(n_epochs=1, iterations_per_epoch=2)
    engine = TimingEngine(get_card("resnet50-cifar10"), spec, total_iterations=2)
    res = DistributedTrainer(spec, plan, engine, BSP()).run()
    path = tmp_path / "real.json"
    save_recorder(res.recorder, path)
    loaded = load_recorder(path)
    assert loaded.throughput() == pytest.approx(res.recorder.throughput())
    assert loaded.mean_bst() == pytest.approx(res.recorder.mean_bst())


def test_from_dict_rejects_unknown_fields():
    from repro.metrics.export import ExportError

    payload = recorder_to_dict(make_recorder())
    payload["iterations"][0]["bogus"] = 1
    with pytest.raises(ExportError, match=r"iterations\[0\].*unknown fields.*bogus"):
        recorder_from_dict(payload)


def test_from_dict_rejects_missing_fields():
    from repro.metrics.export import ExportError

    payload = recorder_to_dict(make_recorder())
    del payload["epochs"][0]["metric"]
    with pytest.raises(ExportError, match=r"epochs\[0\].*missing fields.*metric"):
        recorder_from_dict(payload)


def test_from_dict_rejects_non_object_record():
    from repro.metrics.export import ExportError

    with pytest.raises(ExportError, match=r"iterations\[0\]: expected an object"):
        recorder_from_dict({"iterations": [[1, 2, 3]]})


def test_export_error_is_a_value_error():
    from repro.metrics.export import ExportError

    assert issubclass(ExportError, ValueError)


def test_save_is_atomic_no_temp_left_behind(tmp_path):
    path = tmp_path / "run.json"
    save_recorder(make_recorder(), path)
    assert json.loads(path.read_text())  # complete, parseable file
    assert list(tmp_path.iterdir()) == [path]  # temp file renamed away


def test_save_overwrites_existing_file(tmp_path):
    path = tmp_path / "run.json"
    path.write_text("corrupt-old-content")
    save_recorder(make_recorder(), path)
    assert json.loads(path.read_text())["summary"]["total_iterations"] == 1
