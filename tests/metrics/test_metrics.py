"""Unit tests for the metric recorder and report formatting."""

import pytest

from repro.metrics import (
    EpochRecord,
    IterationRecord,
    Recorder,
    format_series,
    format_table,
)


def iter_rec(worker=0, iteration=0, start=0.0, compute=1.0, sync=0.5, loss=2.0, samples=64):
    return IterationRecord(
        worker=worker,
        iteration=iteration,
        start_time=start,
        compute_time=compute,
        sync_time=sync,
        loss=loss,
        samples=samples,
    )


def epoch_rec(epoch=0, time=10.0, loss=1.0, metric=0.5, iters=10):
    return EpochRecord(
        epoch=epoch, time=time, train_loss=loss, metric=metric, iterations_done=iters
    )


def test_empty_recorder_defaults():
    r = Recorder()
    assert r.throughput() == 0.0
    assert r.mean_bst() == 0.0
    assert r.mean_bct() == 0.0
    assert r.best_metric() == 0.0
    assert r.end_time() == 0.0
    assert r.communication_share() == 0.0
    assert r.time_to_accuracy() == []


def test_throughput_and_end_time():
    r = Recorder()
    r.record_iteration(iter_rec(start=0.0))
    r.record_iteration(iter_rec(start=1.5, iteration=1))
    assert r.end_time() == pytest.approx(3.0)
    assert r.total_samples == 128
    assert r.throughput() == pytest.approx(128 / 3.0)


def test_bst_bct_means():
    r = Recorder()
    r.record_iteration(iter_rec(compute=1.0, sync=0.5))
    r.record_iteration(iter_rec(compute=3.0, sync=1.5, iteration=1))
    assert r.mean_bct() == pytest.approx(2.0)
    assert r.mean_bst() == pytest.approx(1.0)
    assert r.communication_share() == pytest.approx(1.0 / 3.0)
    assert r.mean_iteration_time() == pytest.approx(3.0)


def test_best_metric_and_iterations_to_best():
    r = Recorder()
    r.record_epoch(epoch_rec(0, 10, metric=0.3, iters=8))
    r.record_epoch(epoch_rec(1, 20, metric=0.9, iters=16))
    r.record_epoch(epoch_rec(2, 30, metric=0.7, iters=24))
    assert r.best_metric() == 0.9
    assert r.iterations_to_best() == 16


def test_time_to_accuracy_and_time_to_reach():
    r = Recorder()
    r.record_epoch(epoch_rec(0, 10, metric=0.3))
    r.record_epoch(epoch_rec(1, 20, metric=0.8))
    assert r.time_to_accuracy() == [(10.0, 0.3), (20.0, 0.8)]
    assert r.time_to_reach(0.5) == 20.0
    assert r.time_to_reach(0.95) is None


def test_format_table_alignment_and_title():
    out = format_table(["a", "bb"], [(1, "xy"), (22, "z")], title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "bb" in lines[1]
    assert len(lines) == 5


def test_format_table_rejects_ragged_rows():
    with pytest.raises(ValueError):
        format_table(["a"], [(1, 2)])


def test_format_table_float_formatting():
    out = format_table(["x"], [(1.23456789,)])
    assert "1.235" in out


def test_format_series_subsamples_long_curves():
    pts = [(float(i), float(i)) for i in range(200)]
    out = format_series("s", pts, max_points=10)
    assert out.count("(") <= 12
    assert "(199," in out  # last point always kept


def test_format_series_short_curve_kept_whole():
    pts = [(0.0, 1.0), (1.0, 2.0)]
    out = format_series("curve", pts)
    assert out.count("(") == 2
