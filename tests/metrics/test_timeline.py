"""Tests for the ASCII timeline renderer."""

from repro.metrics.recorder import IterationRecord
from repro.metrics.timeline import render_timeline


def rec(worker, start, compute, sync, iteration=0):
    return IterationRecord(
        worker=worker,
        iteration=iteration,
        start_time=start,
        compute_time=compute,
        sync_time=sync,
        loss=1.0,
        samples=1,
    )


def test_empty_timeline():
    assert "empty" in render_timeline([])


def test_single_worker_bar_proportions():
    out = render_timeline([rec(0, 0.0, 5.0, 5.0)], width=10)
    row = out.splitlines()[0]
    bar = row.split("|")[1]
    assert bar.count("#") == 5
    assert bar.count("=") == 5


def test_one_row_per_worker():
    out = render_timeline([rec(0, 0, 1, 1), rec(2, 0, 1, 1)])
    lines = out.splitlines()
    assert lines[0].startswith("w0 ")
    assert lines[1].startswith("w2 ")
    assert len(lines) == 3  # two workers + legend


def test_idle_gap_rendered():
    out = render_timeline([rec(0, 0.0, 2.0, 0.0), rec(0, 8.0, 2.0, 0.0, iteration=1)], width=10)
    bar = out.splitlines()[0].split("|")[1]
    assert "." in bar


def test_horizon_clipping():
    out = render_timeline([rec(0, 0.0, 10.0, 10.0)], width=10, until=10.0)
    bar = out.splitlines()[0].split("|")[1]
    assert bar.count("#") == 10
    assert "=" not in bar


def test_legend_present():
    out = render_timeline([rec(0, 0, 1, 1)])
    assert "compute" in out and "sync" in out


def test_footer_never_negative_padding():
    """A horizon label longer than the bar width must not corrupt the
    footer (this used to multiply a string by a negative number)."""
    out = render_timeline([rec(0, 0.0, 60000.0, 60000.0)], width=6)
    footer = out.splitlines()[-1]
    assert "120000.00s" in footer
    assert "compute" in footer  # legend still attached


def test_min_width_sync_does_not_overwrite_next_compute():
    """A zero-length sync still paints one '=' cell, but never on top of
    a compute glyph from the adjacent iteration."""
    out = render_timeline(
        [rec(0, 0.0, 5.0, 0.0), rec(0, 5.0, 5.0, 0.0, iteration=1)], width=10
    )
    bar = out.splitlines()[0].split("|")[1]
    assert bar == "#" * 10  # back-to-back compute stays solid


def test_short_sync_still_visible_in_idle():
    out = render_timeline([rec(0, 0.0, 5.0, 0.01)], width=10, until=10.0)
    bar = out.splitlines()[0].split("|")[1]
    assert bar.count("=") == 1  # min-1-cell expansion into idle space
    assert bar.count("#") == 5
