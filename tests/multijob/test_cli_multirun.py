"""CLI surface: ``repro multirun`` and the hardened ``report --compare``."""

import json

import pytest

from repro.cli import main


def _multirun(*extra):
    return main(
        [
            "multirun",
            "--workers",
            "2",
            "--epochs",
            "1",
            "--iterations",
            "2",
            *extra,
        ]
    )


def test_multirun_default_scenario_renders_report(capsys):
    assert _multirun() == 0
    out = capsys.readouterr().out
    assert "osp" in out and "bulk" in out
    assert "contended" in out


def test_multirun_json_summary(capsys):
    assert _multirun("--json") == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["schema"] == "repro.multijob_summary/1"
    assert set(doc["jobs"]) == {"osp", "bulk"}
    assert doc["jobs"]["osp"]["sync"] == "osp"
    assert doc["jobs"]["osp"]["job_bytes"] > 0


def test_multirun_jobs_spec_inline_and_file(tmp_path, capsys):
    spec = [
        {"name": "a", "workload": "vgg16-cifar10", "sync": "bsp",
         "workers": 2, "epochs": 1, "iterations": 2},
        {"name": "b", "workload": "vgg16-cifar10", "sync": "asp",
         "workers": 2, "epochs": 1, "iterations": 2, "background": True},
    ]
    assert _multirun("--jobs", json.dumps(spec), "--json") == 0
    doc = json.loads(capsys.readouterr().out)
    assert set(doc["jobs"]) == {"a", "b"}

    path = tmp_path / "jobs.json"
    path.write_text(json.dumps(spec))
    assert _multirun("--jobs", str(path), "--json") == 0
    doc = json.loads(capsys.readouterr().out)
    assert set(doc["jobs"]) == {"a", "b"}


def test_multirun_summary_and_dash_artifacts(tmp_path, capsys):
    summary = tmp_path / "mj.json"
    dash = tmp_path / "mj.html"
    assert _multirun("--summary", str(summary), "--dash", str(dash)) == 0
    doc = json.loads(summary.read_text())
    assert doc["schema"] == "repro.multijob_summary/1"
    assert "Interference" in dash.read_text()


@pytest.mark.parametrize(
    "spec",
    [
        "not-a-file-or-json",
        "[]",  # empty job list
        '[{"name": "a.b"}]',  # dots are not legal counter segments
        '[{"name": "a", "workload": "vgg16-cifar10", "sync": "bogus"}]',
        '[{"name": "a", "workload": "vgg16-cifar10", "sync": "bsp", "frob": 1}]',
    ],
    ids=["missing-file", "empty-list", "bad-name", "bad-sync", "unknown-key"],
)
def test_multirun_bad_jobs_spec_exits_2(spec, capsys):
    assert _multirun("--jobs", spec) == 2
    assert "bad --jobs spec" in capsys.readouterr().err


def test_report_compare_missing_file_exits_2(tmp_path, capsys):
    missing = tmp_path / "nope.json"
    code = main(["report", "--compare", str(missing), str(missing)])
    assert code == 2
    err = capsys.readouterr().err
    assert "summary file not found" in err
    assert "--summary" in err  # the hint tells the user how to make one


def test_report_compare_schema_mismatch_exits_2(tmp_path, capsys):
    bogus = tmp_path / "bogus.json"
    bogus.write_text(json.dumps({"schema": "something/else", "jobs": {}}))
    code = main(["report", "--compare", str(bogus), str(bogus)])
    assert code == 2
    assert "not a comparable run summary" in capsys.readouterr().err


def test_report_compare_corrupt_json_exits_2(tmp_path, capsys):
    broken = tmp_path / "broken.json"
    broken.write_text("{not json")
    code = main(["report", "--compare", str(broken), str(broken)])
    assert code == 2
    assert "not a comparable run summary" in capsys.readouterr().err


def test_report_compare_still_works_on_valid_summaries(tmp_path, capsys):
    from repro.core.osp import OSP
    from repro.harness.workloads import WorkloadConfig, timing_trainer
    from repro.obs.compare import run_summary, save_summary

    trainer = timing_trainer(
        WorkloadConfig(
            "vgg16-cifar10", n_workers=2, n_epochs=1, iterations_per_epoch=2
        ),
        OSP(),
    )
    res = trainer.run()
    path = tmp_path / "run.json"
    save_summary(run_summary(res), path)
    assert main(["report", "--compare", str(path), str(path)]) == 0
    assert "verdict: OK" in capsys.readouterr().out
