"""Single-job bit-identity: repro.multijob must be free when you're alone.

A solo job on an exclusive identity placement goes through every new
layer — JobNetworkView, job tagging, fabric accounting, the runner's
driver process — and must still produce a replay stream (iterations,
epochs, counters, wall time) bit-identical to the same workload run
directly through ``DistributedTrainer``. This is the differential that
licenses routing *all* runs through the co-tenancy path.
"""

import pytest

from repro.check import capture_stream, first_divergence, stream_digest
from repro.core.osp import OSP
from repro.harness.workloads import WorkloadConfig, timing_trainer
from repro.multijob import JobSpec, run_jobs
from repro.sync import ASP, BSP

_CFG = dict(n_workers=4, n_epochs=2, iterations_per_epoch=4, sigma=0.1, seed=7)


def _workload():
    return WorkloadConfig("vgg16-cifar10", **_CFG)


def _direct_stream(sync_factory):
    trainer = timing_trainer(_workload(), sync_factory())
    result = trainer.run()
    return capture_stream(trainer, result)


def _multijob_stream(sync_factory):
    res = run_jobs(
        [JobSpec(name="solo", workload=_workload(), sync_factory=sync_factory)]
    )
    result = res["solo"].result
    # TrainerContext carries ps/engine, which is all capture_stream needs
    return capture_stream(result.context, result)


@pytest.mark.parametrize("sync_factory", [OSP, BSP, ASP], ids=["osp", "bsp", "asp"])
def test_solo_job_stream_bit_identical_to_direct_run(sync_factory):
    direct = _direct_stream(sync_factory)
    multi = _multijob_stream(sync_factory)
    div = first_divergence(direct, multi)
    assert div is None, f"first divergence: {div}"
    assert stream_digest(direct) == stream_digest(multi)


def test_solo_job_metadata_matches_direct_run():
    trainer = timing_trainer(_workload(), OSP())
    direct = trainer.run()
    res = run_jobs([JobSpec(name="solo", workload=_workload(), sync_factory=OSP)])
    run = res["solo"]
    assert run.result.wall_time == direct.wall_time
    assert run.result.throughput == direct.throughput
    assert run.queue_wait == 0.0
    # identity placement: local node i IS pool host i
    assert run.placement.hosts == tuple(range(run.placement.hosts[-1] + 1))


def test_solo_job_recorder_gains_only_excluded_namespaces():
    """The multijob counters the runner adds must all live in namespaces
    the replay stream excludes — otherwise identity would be accidental."""
    from repro.check.replay import _EXCLUDED_COUNTER_PREFIXES

    trainer = timing_trainer(_workload(), OSP())
    direct = trainer.run()
    res = run_jobs([JobSpec(name="solo", workload=_workload(), sync_factory=OSP)])
    extra = set(res["solo"].result.recorder.counters) - set(
        direct.recorder.counters
    )
    assert extra  # the attribution counters do land on the recorder
    for name in extra:
        assert name.startswith(_EXCLUDED_COUNTER_PREFIXES), name


def test_shared_placement_with_cotenant_differs():
    """Sanity: the identity above is meaningful — with the priority
    scheduler killed, a co-tenant on shared hosts fair-shares the links
    and perturbs the timeline. (With priorities on, OSP's HIGH/URGENT
    stages preempt the NORMAL tenant and can be fully protected — that
    isolation is what BENCH_multijob.json guards.)"""
    from repro.perf.hotpath import _env

    def _pair():
        return run_jobs(
            [
                JobSpec(name="osp", workload=_workload(), sync_factory=OSP),
                JobSpec(name="other", workload=_workload(), sync_factory=BSP),
            ],
            placement="shared",
            slots_per_host=2,
            gpus_per_host=2,
        )

    solo = run_jobs([JobSpec(name="osp", workload=_workload(), sync_factory=OSP)])
    with _env(REPRO_NETPRIO="off"):
        pair = _pair()
    assert pair["osp"].result.wall_time > solo["osp"].result.wall_time
