"""JobNetworkView: node mapping, flow tagging, accounting, fault surface."""

import pytest

from repro.multijob.netview import (
    FabricAccounting,
    JobNetworkView,
    MappedStarTopology,
)
from repro.netsim.links import LinkSpec
from repro.netsim.network import Network
from repro.netsim.prio import PRIO_BULK, PRIO_HIGH, PRIO_NORMAL
from repro.netsim.topology import StarTopology
from repro.simcore.environment import Environment


def _fabric(n=4, bw=100.0):
    env = Environment()
    net = Network(env, StarTopology(n, default_spec=LinkSpec(bandwidth=bw)))
    return env, net


def test_view_maps_local_nodes_to_pool_hosts():
    env, net = _fabric(4)
    view = JobNetworkView(net, "job", node_map=[2, 3])
    done = view.transfer(0, 1, 100.0)
    env.run(until=done)
    rec = done.value
    # flow actually crossed hosts 2 -> 3 on the shared fabric
    assert (rec.src, rec.dst) == (2, 3)


def test_view_rejects_out_of_placement_nodes():
    _env, net = _fabric(4)
    view = JobNetworkView(net, "job", node_map=[0, 1])
    with pytest.raises(ValueError, match="no local node"):
        view.transfer(0, 5, 10.0)


def test_flows_tagged_with_job_for_byte_accounting():
    env, net = _fabric(4)
    a = JobNetworkView(net, "a", node_map=[0, 1])
    b = JobNetworkView(net, "b", node_map=[2, 3])
    d1 = a.transfer(0, 1, 300.0)
    d2 = b.transfer(0, 1, 500.0)
    env.run(until=env.all_of([d1, d2]))
    assert net.job_bytes("a") == pytest.approx(300.0)
    assert net.job_bytes("b") == pytest.approx(500.0)
    assert a.job_bytes() == pytest.approx(300.0)
    assert net.stats["netsim.job_bytes.a"] == pytest.approx(300.0)


def test_untagged_transfers_cost_nothing_extra():
    env, net = _fabric(2)
    done = net.transfer(0, 1, 100.0)
    env.run(until=done)
    assert not any(k.startswith("netsim.job_bytes.") for k in net.stats)


def test_default_prio_demotes_only_default_class():
    env, net = _fabric(2)
    view = JobNetworkView(net, "bg", node_map=[0, 1], default_prio=PRIO_BULK)
    d1 = view.transfer(0, 1, 10.0)                  # NORMAL -> demoted
    d2 = view.transfer(0, 1, 10.0, prio=PRIO_HIGH)  # explicit class kept
    env.run(until=env.all_of([d1, d2]))
    assert net.stats.get("netsim.prio_bytes.bulk", 0) == pytest.approx(10.0)
    assert net.stats.get("netsim.prio_bytes.high", 0) == pytest.approx(10.0)
    assert net.stats.get("netsim.prio_bytes.normal", 0) == pytest.approx(0.0)


def test_view_keeps_per_job_records_shared_net_interleaves():
    env, net = _fabric(4)
    a = JobNetworkView(net, "a", node_map=[0, 1])
    b = JobNetworkView(net, "b", node_map=[2, 3])
    done = env.all_of([a.transfer(0, 1, 100.0), b.transfer(0, 1, 200.0)])
    env.run(until=done)
    assert [r.size for r in a.records] == [100.0]
    assert [r.size for r in b.records] == [200.0]
    assert len(net.records) == 2


def test_accounting_classifies_contended_vs_solo():
    env, net = _fabric(4)
    acct = FabricAccounting()
    a = JobNetworkView(net, "a", node_map=[0, 1], accounting=acct)
    b = JobNetworkView(net, "b", node_map=[2, 3], accounting=acct)
    # a starts alone -> solo; b starts while a is in flight -> contended
    d1 = a.transfer(0, 1, 1000.0)
    d2 = b.transfer(0, 1, 1000.0)
    env.run(until=env.all_of([d1, d2]))
    acct._advance(env.now)
    assert acct.solo_bytes["a"] == pytest.approx(1000.0)
    assert acct.contended_bytes["b"] == pytest.approx(1000.0)
    assert acct.pair_overlap[frozenset(("a", "b"))] > 0.0
    # disjoint placements at equal size drain together
    assert acct.active_seconds["a"] == pytest.approx(acct.active_seconds["b"])


def test_accounting_solo_after_other_job_drains():
    env, net = _fabric(4)
    acct = FabricAccounting()
    a = JobNetworkView(net, "a", node_map=[0, 1], accounting=acct)
    d1 = a.transfer(0, 1, 100.0)
    env.run(until=d1)
    d2 = a.transfer(0, 1, 100.0)
    env.run(until=d2)
    acct._advance(env.now)
    assert acct.solo_bytes["a"] == pytest.approx(200.0)
    assert acct.contended_seconds.get("a", 0.0) == 0.0


def test_mapped_topology_borrows_pool_links():
    _env, net = _fabric(6)
    view = JobNetworkView(net, "j", node_map=[4, 5])
    topo = view.topology
    assert isinstance(topo, MappedStarTopology)
    # the fault injector's isinstance(StarTopology) gate must hold
    assert isinstance(topo, StarTopology)
    assert topo.n_nodes == 2
    # local node 0's links ARE pool host 4's link objects, not copies
    assert topo.uplinks[0] is net.topology.uplinks[4]
    assert topo.downlinks[1] is net.topology.downlinks[5]
    # inherited routing works on the borrowed links
    route = topo.route(0, 1)
    assert [l.name for l in route] == ["up:4", "down:5"]


def test_view_delegates_fabric_wide_operations():
    env, net = _fabric(4)
    view = JobNetworkView(net, "j", node_map=[0, 1])
    assert view.stats is net.stats
    assert view.bulk_time(0, 1, 100.0) == net.bulk_time(0, 1, 100.0)
    view.refresh_capacities()  # must not raise (delegates to shared net)
