"""NodePool placement accounting: exclusive vs shared, rollback, release."""

import pytest

from repro.multijob.pool import NodePool, PLACEMENT_MODES
from repro.simcore.environment import Environment


def _pool(n_hosts=4, slots=1, gpus=None):
    return NodePool(
        Environment(), n_hosts, slots_per_host=slots, gpus_per_host=gpus
    )


def test_exclusive_takes_lowest_free_hosts_whole():
    pool = _pool(4)
    a = pool.allocate("a", 2, "exclusive")
    assert a.hosts == (0, 1)
    b = pool.allocate("b", 2, "exclusive")
    assert b.hosts == (2, 3)
    assert not pool.can_allocate(1, "exclusive")
    pool.release(a)
    assert pool.can_allocate(2, "exclusive")
    c = pool.allocate("c", 2, "exclusive")
    assert c.hosts == (0, 1)


def test_exclusive_overflow_raises_and_changes_nothing():
    pool = _pool(2)
    pool.allocate("a", 2, "exclusive")
    with pytest.raises(RuntimeError, match="cannot place"):
        pool.allocate("b", 1, "exclusive")
    assert [pool.free_slots(h) for h in range(2)] == [0, 0]


def test_shared_spreads_then_stacks_identically():
    # Two same-shape jobs on a just-big-enough pool land on the SAME
    # hosts in the SAME order — the co-location the contention bench
    # relies on.
    pool = _pool(3, slots=2)
    a = pool.allocate("a", 3, "shared")
    b = pool.allocate("b", 3, "shared")
    assert a.hosts == b.hosts == (0, 1, 2)
    assert not pool.can_allocate(1, "shared")


def test_shared_prefers_most_free_host():
    pool = _pool(2, slots=2)
    a = pool.allocate("a", 1, "shared")
    assert a.hosts == (0,)
    # host 1 now has more free slots than host 0
    b = pool.allocate("b", 1, "shared")
    assert b.hosts == (1,)


def test_shared_rollback_on_overflow():
    pool = _pool(2, slots=1)
    with pytest.raises(RuntimeError, match="out of host slots"):
        pool.allocate("big", 3, "shared")
    # partial assignment rolled back: both hosts free again
    assert [pool.free_slots(h) for h in range(2)] == [1, 1]


def test_exclusive_needs_fully_free_hosts():
    pool = _pool(2, slots=2)
    pool.allocate("a", 1, "shared")
    # host 0 is half-occupied: exclusive can only use host 1
    assert pool.can_allocate(1, "exclusive")
    assert not pool.can_allocate(2, "exclusive")
    b = pool.allocate("b", 1, "exclusive")
    assert b.hosts == (1,)


def test_release_restores_consumed_slots():
    pool = _pool(2, slots=2)
    p = pool.allocate("a", 3, "shared")
    assert sum(p.consumed.values()) == 3
    pool.release(p)
    assert [pool.free_slots(h) for h in range(2)] == [2, 2]


def test_pool_validation():
    with pytest.raises(ValueError):
        _pool(0)
    with pytest.raises(ValueError):
        _pool(2, slots=0)
    with pytest.raises(ValueError):
        _pool(2, gpus=0)
    pool = _pool(2)
    with pytest.raises(ValueError, match="placement mode"):
        pool.allocate("a", 1, "bogus")
    with pytest.raises(ValueError):
        pool.allocate("a", 0, "shared")
    assert PLACEMENT_MODES == ("exclusive", "shared")


def test_compute_slots_capacity_follows_gpus_per_host():
    pool = _pool(2, slots=2, gpus=1)
    assert pool.compute_slot(0).capacity == 1
    pool2 = _pool(2, slots=2)
    assert pool2.compute_slot(0).capacity == 2  # defaults to slots_per_host


def test_topology_matches_single_tenant_star():
    from repro.netsim.topology import StarTopology

    pool = _pool(5)
    assert isinstance(pool.topology, StarTopology)
    assert pool.topology.n_nodes == 5
    ref = StarTopology(5, default_spec=pool.link)
    assert [l.name for l in pool.topology.links] == [l.name for l in ref.links]
