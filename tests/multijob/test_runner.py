"""MultiJobRunner end-to-end: co-tenant runs, attribution, observability."""

import pytest

from repro.harness.cotenancy import osp_with_background, shared_fabric_runner
from repro.harness.workloads import WorkloadConfig
from repro.multijob import JobSpec, MultiJobRunner, multijob_summary, render_report
from repro.sync import BSP

_SMALL = dict(n_epochs=1, iterations_per_epoch=3)


def _pair():
    return osp_with_background(n_workers=3, **_SMALL)


def test_cotenant_pair_completes_with_separate_recorders():
    res = shared_fabric_runner(_pair()).run()
    osp, bulk = res["osp"], res["bulk"]
    assert osp.result.sync_name == "osp"
    assert bulk.result.sync_name == "bsp"
    assert osp.result.recorder is not bulk.result.recorder
    # each tenant recorded its own full iteration schedule
    assert osp.result.recorder.total_iterations == 3 * 3
    assert bulk.result.recorder.total_iterations == 3 * 3
    # makespan covers the slower tenant
    assert res.wall_time == pytest.approx(
        max(osp.finished, bulk.finished)
    )


def test_per_job_byte_attribution_sums_to_fabric_total():
    res = shared_fabric_runner(_pair()).run()
    per_job = sum(r.job_bytes for r in res.jobs.values())
    fabric = sum(
        v for k, v in res.network_stats.items()
        if k.startswith("netsim.job_bytes.")
    )
    assert per_job == pytest.approx(fabric)
    for run in res.jobs.values():
        assert run.contended_bytes + run.solo_bytes == pytest.approx(
            run.job_bytes, rel=1e-6
        )


def test_multijob_counters_on_each_recorder():
    res = shared_fabric_runner(_pair()).run()
    for run in res.jobs.values():
        counters = run.result.recorder.counters
        assert counters["multijob.job_bytes"] == pytest.approx(run.job_bytes)
        assert counters["multijob.contended_bytes"] == pytest.approx(
            run.contended_bytes
        )
        assert counters["multijob.solo_bytes"] == pytest.approx(run.solo_bytes)


def test_interference_matrix_symmetric_with_zero_diagonal():
    res = shared_fabric_runner(_pair()).run()
    m = res.interference_matrix()
    assert m["osp"]["bulk"] == m["bulk"]["osp"] > 0.0
    assert m["osp"]["osp"] == m["bulk"]["bulk"] == 0.0


def test_gpu_oversubscription_serializes_compute():
    jobs = _pair()
    roomy = shared_fabric_runner(jobs).run()  # 2 GPUs/host: no serialization
    tight = shared_fabric_runner(_pair(), gpus_per_host=1).run()
    assert tight.wall_time > roomy.wall_time


def test_exclusive_placement_isolates_star_tenants():
    # On a pure star with exclusive hosts, tenants never share links, so
    # each tenant's wall time matches its solo run. (contended_bytes is
    # *temporal* attribution — bytes moved while another tenant was
    # active anywhere on the fabric — so it is nonzero here by design;
    # what exclusivity buys is performance, not zero overlap.)
    jobs = _pair()
    solo = {j.name: MultiJobRunner([j]).run()[j.name] for j in _pair()}
    res = MultiJobRunner(jobs, placement="exclusive").run()
    for name, run in res.jobs.items():
        # approx, not exact: co-tenant flow events repartition the fluid
        # drain intervals, which perturbs float summation at the ulp level
        assert run.result.wall_time == pytest.approx(
            solo[name].result.wall_time, rel=1e-9
        )
    assert any(run.contended_bytes > 0 for run in res.jobs.values())


def test_tracing_spans_carry_job_dimension():
    runner = shared_fabric_runner(_pair())
    tracer = runner.enable_tracing()
    runner.run()
    jobs = {s.job for s in tracer.spans if s.job is not None}
    assert jobs == {"osp", "bulk"}
    # per-tenant RS filtering works despite job-local worker-id collisions
    assert any(s.name == "rs_push" and s.job == "osp" for s in tracer.spans)


def test_sampling_tracks_per_tenant_occupancy():
    runner = shared_fabric_runner(_pair())
    sampler = runner.enable_sampling(interval=0.5)
    res = runner.run()
    assert res.sampler is sampler
    for name in ("osp", "bulk"):
        series = sampler.series_for(f"multijob.{name}.active_flows")
        assert len(series.times) > 0
        assert max(series.values) > 0


def test_summary_and_report_round_trip(tmp_path):
    import json

    from repro.multijob.report import MULTIJOB_SCHEMA, save_summary

    res = shared_fabric_runner(_pair()).run()
    summary = multijob_summary(res)
    assert summary["schema"] == MULTIJOB_SCHEMA
    path = save_summary(summary, tmp_path / "mj.json")
    loaded = json.loads(path.read_text())
    assert set(loaded["jobs"]) == {"osp", "bulk"}
    assert loaded["interference"]["osp"]["bulk"] > 0
    text = render_report(res)
    assert "osp" in text and "bulk" in text and "contended" in text


def test_numeric_mode_job_runs_through_multijob():
    from repro.harness.workloads import make_numeric_dataset

    cfg = WorkloadConfig(
        "vgg16-cifar10", n_workers=2, n_epochs=1, iterations_per_epoch=2, seed=3
    )
    data = make_numeric_dataset(cfg.card, n_samples=100, seed=3)
    job = JobSpec(
        name="num",
        workload=cfg,
        sync_factory=BSP,
        mode="numeric",
        numeric_kwargs={"data": data, "batch_size": 25},
    )
    res = MultiJobRunner([job]).run()
    assert res["num"].result.recorder.total_iterations > 0


def test_dashboard_renders_cotenancy_sections():
    from repro.obs.dash import render_multijob_dashboard

    runner = shared_fabric_runner(_pair())
    runner.enable_sampling(interval=0.5)
    res = runner.run()
    page = render_multijob_dashboard(res)
    assert "Interference" in page
    assert "Fabric occupancy" in page
    assert "osp" in page and "bulk" in page
