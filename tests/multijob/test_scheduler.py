"""Admission policies: immediate, FIFO ordering, bandwidth headroom."""

import pytest

from repro.harness.cotenancy import uniform_jobs
from repro.multijob import JobSpec, MultiJobRunner, run_jobs
from repro.simcore.environment import SimulationError


def _jobs(n, workers=2):
    return uniform_jobs(
        n, n_workers=workers, n_epochs=1, iterations_per_epoch=2, seed=3
    )


def test_immediate_starts_everyone_at_zero():
    res = run_jobs(_jobs(3), admission="immediate")
    assert all(r.admitted == 0.0 for r in res.jobs.values())
    # exclusive default pool sized to fit all three at once
    assert res.n_hosts == sum(j.n_nodes for j in _jobs(3))


def test_fifo_serializes_on_a_tight_pool():
    jobs = _jobs(3)
    res = run_jobs(jobs, n_hosts=jobs[0].n_nodes, admission="fifo")
    j0, j1, j2 = (res.jobs[f"j{i}"] for i in range(3))
    assert j0.admitted == 0.0
    assert j1.admitted == pytest.approx(j0.finished)
    assert j2.admitted == pytest.approx(j1.finished)
    assert j1.queue_wait > 0.0
    # per-job wall time excludes the queue wait
    assert j2.wall_time == pytest.approx(j2.finished - j2.admitted)


def test_fifo_preserves_submission_order_even_when_later_fits():
    # j0 (wide) can't fit until enough hosts free; j1 (narrow) COULD fit
    # immediately but must not overtake.
    def _named(name, workers, seed):
        j = uniform_jobs(
            1, n_workers=workers, n_epochs=1, iterations_per_epoch=2, seed=seed
        )[0]
        return JobSpec(name=name, workload=j.workload, sync_factory=j.sync_factory)

    wide = _named("wide", 4, 3)
    narrow = _named("narrow", 1, 9)
    blocker = _named("blocker", 2, 5)
    # pool of 5: blocker (3 nodes) admits first, wide (5 nodes) waits,
    # narrow (2 nodes) would fit beside blocker but queues behind wide.
    res = run_jobs([blocker, wide, narrow], n_hosts=5, admission="fifo")
    assert res.jobs["blocker"].admitted == 0.0
    assert res.jobs[wide.name].admitted == pytest.approx(
        res.jobs["blocker"].finished
    )
    assert res.jobs[narrow.name].admitted >= res.jobs[wide.name].admitted


def test_bandwidth_gate_limits_concurrent_offered_load():
    jobs = _jobs(3)  # 2 workers each -> demand 2 lines/job
    # 9 hosts, headroom 0.5 -> capacity 4.5 lines: two jobs fit, not three
    res = run_jobs(jobs, n_hosts=9, admission="bandwidth", headroom=0.5)
    admits = sorted(r.admitted for r in res.jobs.values())
    assert admits[0] == admits[1] == 0.0
    assert admits[2] > 0.0


def test_bandwidth_with_full_headroom_matches_fifo_placement_gate():
    jobs = _jobs(2)
    bw = run_jobs(jobs, n_hosts=12, admission="bandwidth", headroom=1.0)
    fifo = run_jobs(jobs, n_hosts=12, admission="fifo")
    assert [bw.jobs[j.name].admitted for j in jobs] == [
        fifo.jobs[j.name].admitted for j in jobs
    ]


def test_unplaceable_job_deadlocks_loudly():
    jobs = _jobs(1, workers=8)  # needs 9 hosts
    with pytest.raises(SimulationError):
        run_jobs(jobs, n_hosts=4, admission="fifo")


def test_immediate_on_too_small_pool_raises_placement_error():
    jobs = _jobs(2)
    with pytest.raises(RuntimeError, match="cannot place"):
        run_jobs(jobs, n_hosts=jobs[0].n_nodes, admission="immediate")


def test_runner_rejects_bad_config():
    with pytest.raises(ValueError, match="at least one job"):
        MultiJobRunner([])
    jobs = _jobs(1) + _jobs(1)
    with pytest.raises(ValueError, match="duplicate job names"):
        MultiJobRunner(jobs)
    with pytest.raises(ValueError, match="admission mode"):
        MultiJobRunner(_jobs(1), admission="bogus")
    with pytest.raises(ValueError, match="placement mode"):
        MultiJobRunner(_jobs(1), placement="bogus")
