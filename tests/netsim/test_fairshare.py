"""Unit + property tests for max–min fair allocation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim.fairshare import max_min_fair_rates


def test_single_flow_gets_bottleneck_capacity():
    rates = max_min_fair_rates({"f": ["a", "b"]}, {"a": 10.0, "b": 4.0})
    assert rates["f"] == pytest.approx(4.0)


def test_two_flows_share_common_link_equally():
    rates = max_min_fair_rates(
        {"f1": ["shared"], "f2": ["shared"]}, {"shared": 10.0}
    )
    assert rates["f1"] == pytest.approx(5.0)
    assert rates["f2"] == pytest.approx(5.0)


def test_incast_n_flows_each_get_b_over_n():
    """N workers pushing into one PS downlink: classic incast (Fig. 1)."""
    n = 8
    routes = {f"w{i}": [f"up{i}", "ps_down"] for i in range(n)}
    caps = {f"up{i}": 100.0 for i in range(n)}
    caps["ps_down"] = 100.0
    rates = max_min_fair_rates(routes, caps)
    for i in range(n):
        assert rates[f"w{i}"] == pytest.approx(100.0 / n)


def test_unconstrained_flow_takes_leftover():
    """One flow bottlenecked elsewhere leaves headroom for the other."""
    routes = {"small": ["x", "shared"], "big": ["shared"]}
    caps = {"x": 2.0, "shared": 10.0}
    rates = max_min_fair_rates(routes, caps)
    assert rates["small"] == pytest.approx(2.0)
    assert rates["big"] == pytest.approx(8.0)


def test_loopback_flow_infinite_rate():
    rates = max_min_fair_rates({"lo": []}, {})
    assert rates["lo"] == float("inf")


def test_unknown_link_raises():
    with pytest.raises(ValueError):
        max_min_fair_rates({"f": ["ghost"]}, {"real": 1.0})


def test_nonpositive_capacity_raises():
    with pytest.raises(ValueError):
        max_min_fair_rates({"f": ["a"]}, {"a": 0.0})


def test_three_level_cascade():
    """Textbook max-min example with successive bottlenecks."""
    routes = {
        "A": ["l1", "l2"],
        "B": ["l1"],
        "C": ["l2", "l3"],
        "D": ["l3"],
    }
    caps = {"l1": 10.0, "l2": 12.0, "l3": 6.0}
    rates = max_min_fair_rates(routes, caps)
    # l3 is tightest: C and D each get 3. Then l1: A and B share 10 -> 5 each.
    assert rates["C"] == pytest.approx(3.0)
    assert rates["D"] == pytest.approx(3.0)
    assert rates["A"] == pytest.approx(5.0)
    assert rates["B"] == pytest.approx(5.0)


def test_duplicate_link_in_route_counts_once():
    rates = max_min_fair_rates({"f": ["a", "a"]}, {"a": 5.0})
    assert rates["f"] == pytest.approx(5.0)


def test_determinism_same_input_same_output():
    routes = {f"f{i}": ["a", f"b{i % 3}"] for i in range(9)}
    caps = {"a": 7.0, "b0": 3.0, "b1": 5.0, "b2": 9.0}
    assert max_min_fair_rates(routes, caps) == max_min_fair_rates(routes, caps)


# ------------------------------------------------------------- properties
@st.composite
def _random_networks(draw):
    n_links = draw(st.integers(min_value=1, max_value=6))
    links = [f"L{i}" for i in range(n_links)]
    caps = {
        l: draw(st.floats(min_value=0.5, max_value=100.0, allow_nan=False))
        for l in links
    }
    n_flows = draw(st.integers(min_value=1, max_value=8))
    routes = {}
    for i in range(n_flows):
        k = draw(st.integers(min_value=1, max_value=n_links))
        routes[f"f{i}"] = draw(
            st.lists(st.sampled_from(links), min_size=k, max_size=k, unique=True)
        )
    return routes, caps


@given(_random_networks())
@settings(max_examples=200, deadline=None)
def test_property_no_link_oversubscribed(net):
    routes, caps = net
    rates = max_min_fair_rates(routes, caps)
    load = {l: 0.0 for l in caps}
    for fid, route in routes.items():
        for l in set(route):
            load[l] += rates[fid]
    for l in caps:
        assert load[l] <= caps[l] * (1 + 1e-9)


@given(_random_networks())
@settings(max_examples=200, deadline=None)
def test_property_every_flow_has_saturated_bottleneck(net):
    """Max-min: each flow crosses a saturated link where it is among the
    maximal-rate flows (the defining property of max-min fairness)."""
    routes, caps = net
    rates = max_min_fair_rates(routes, caps)
    load = {l: 0.0 for l in caps}
    for fid, route in routes.items():
        for l in set(route):
            load[l] += rates[fid]
    for fid, route in routes.items():
        has_bottleneck = False
        for l in set(route):
            saturated = load[l] >= caps[l] * (1 - 1e-6)
            is_max = all(
                rates[fid] >= rates[g] - 1e-6
                for g, r in routes.items()
                if l in set(r)
            )
            if saturated and is_max:
                has_bottleneck = True
                break
        assert has_bottleneck, f"flow {fid} is not max-min bottlenecked"


@given(_random_networks())
@settings(max_examples=100, deadline=None)
def test_property_rates_positive(net):
    routes, caps = net
    rates = max_min_fair_rates(routes, caps)
    for fid in routes:
        assert rates[fid] > 0
