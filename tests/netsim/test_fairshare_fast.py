"""Differential tests: fast fair-share solver ≡ legacy progressive filling.

The fast path's whole contract is *bit-identical rate dicts* — not
approximately-equal, ``==``-equal floats — on every input the reference
accepts. Hypothesis drives randomized star topologies (the trainer's
shape), multi-tier/general topologies, degenerate eps-scale capacities,
and loopback/empty-route flows through both solvers.
"""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim.fairshare import (
    fair_rates,
    fairshare_mode,
    fast_fair_rates,
    max_min_fair_rates,
)


# ------------------------------------------------------------- mode dispatch
def test_default_mode_is_fast(monkeypatch):
    monkeypatch.delenv("REPRO_FAIRSHARE", raising=False)
    assert fairshare_mode() == "fast"


def test_legacy_kill_switch(monkeypatch):
    monkeypatch.setenv("REPRO_FAIRSHARE", "legacy")
    assert fairshare_mode() == "legacy"
    monkeypatch.setenv("REPRO_FAIRSHARE", "  LEGACY ")
    assert fairshare_mode() == "legacy"
    monkeypatch.setenv("REPRO_FAIRSHARE", "fast")
    assert fairshare_mode() == "fast"


def test_fair_rates_dispatches_on_mode(monkeypatch):
    routes = {"f1": ["a", "b"], "f2": ["b"]}
    caps = {"a": 3.0, "b": 4.0}
    monkeypatch.setenv("REPRO_FAIRSHARE", "legacy")
    legacy = fair_rates(routes, caps)
    monkeypatch.delenv("REPRO_FAIRSHARE", raising=False)
    fast = fair_rates(routes, caps)
    assert legacy == fast == max_min_fair_rates(routes, caps)


# --------------------------------------------------- fast solver unit checks
def test_fast_matches_legacy_on_textbook_cascade():
    routes = {
        "f1": ["l1"],
        "f2": ["l1", "l2"],
        "f3": ["l2", "l3"],
        "f4": ["l3"],
    }
    caps = {"l1": 10.0, "l2": 14.0, "l3": 20.0}
    assert fast_fair_rates(routes, caps) == max_min_fair_rates(routes, caps)


def test_fast_validates_inputs():
    with pytest.raises(ValueError):
        fast_fair_rates({"f": ["ghost"]}, {"real": 1.0})
    with pytest.raises(ValueError):
        fast_fair_rates({"f": ["a"]}, {"a": 0.0})


def test_fast_loopback_and_duplicate_links():
    routes = {"lo": [], "dup": ["a", "a"], "plain": ["a"]}
    caps = {"a": 6.0}
    fast = fast_fair_rates(routes, caps)
    assert fast == max_min_fair_rates(routes, caps)
    assert fast["lo"] == float("inf")
    # A duplicated link counts once for its crossing flow.
    assert fast["dup"] == pytest.approx(3.0)


# -------------------------------------------------- zero-share freeze hazard
def test_zero_share_clamp_does_not_freeze_flows_at_zero():
    """Regression for the zero-share freeze hazard.

    The ``max(0.0, ...)`` clamp can zero a loaded link's remaining
    capacity when eps-scale shares tie within float fuzz; the old solver
    then froze that link's flows at rate 0.0 — a transfer that never
    completes (and the defensive RuntimeError in Network._rerate). The
    "f0" single-link flow pins link "a" first in scan order so the
    degenerate round deterministically reproduces the old hazard.
    """
    routes = {"f0": ["a"], "f1": ["a", "b"], "f2": ["b"]}
    caps = {"a": 2e-12, "b": 1e-12}
    for solver in (max_min_fair_rates, fast_fair_rates):
        rates = solver(routes, caps)
        assert all(r > 0.0 for r in rates.values()), (solver.__name__, rates)
    assert max_min_fair_rates(routes, caps) == fast_fair_rates(routes, caps)


# ------------------------------------------------------- hypothesis strategy
@st.composite
def star_cases(draw):
    """Randomized star topology: every route = one uplink + one downlink."""
    n = draw(st.integers(min_value=2, max_value=24))
    cap = st.floats(
        min_value=1e-12, max_value=1e9, allow_nan=False, allow_infinity=False
    )
    caps = {}
    for i in range(n):
        caps[f"up:{i}"] = draw(cap)
        caps[f"down:{i}"] = draw(cap)
    n_flows = draw(st.integers(min_value=1, max_value=3 * n))
    flows = {}
    for j in range(n_flows):
        src = draw(st.integers(min_value=0, max_value=n - 1))
        dst = draw(st.integers(min_value=0, max_value=n - 1))
        flows[j] = [] if src == dst else [f"up:{src}", f"down:{dst}"]
    return flows, caps


@st.composite
def general_cases(draw):
    """Arbitrary multi-tier topology with degenerate capacities allowed."""
    n_links = draw(st.integers(min_value=1, max_value=8))
    links = [f"L{i}" for i in range(n_links)]
    cap = st.one_of(
        st.floats(min_value=0.5, max_value=100.0, allow_nan=False),
        st.floats(min_value=1e-12, max_value=1e-9, allow_nan=False),
    )
    caps = {l: draw(cap) for l in links}
    n_flows = draw(st.integers(min_value=1, max_value=10))
    flows = {}
    for j in range(n_flows):
        k = draw(st.integers(min_value=0, max_value=min(4, n_links)))
        route = draw(
            st.lists(st.sampled_from(links), min_size=k, max_size=k)
        )
        flows[f"f{j}"] = route
    return flows, caps


@settings(max_examples=300, deadline=None)
@given(star_cases())
def test_fast_bit_identical_on_stars(case):
    flows, caps = case
    assert fast_fair_rates(flows, caps) == max_min_fair_rates(flows, caps)


@settings(max_examples=300, deadline=None)
@given(general_cases())
def test_fast_bit_identical_on_general_topologies(case):
    flows, caps = case
    legacy = max_min_fair_rates(flows, caps)
    fast = fast_fair_rates(flows, caps)
    assert fast == legacy
    # Both also honour the basic feasibility property.
    assert all(r > 0.0 for r in fast.values())


@settings(max_examples=150, deadline=None)
@given(general_cases())
def test_fast_trusted_path_matches_validating_path(case):
    """validate=False (the Network's calling convention) must not change
    results on inputs that satisfy its contract."""
    flows, caps = case
    trusted = {
        fid: tuple(route) for fid, route in flows.items() if route
    }
    if not trusted:
        return
    assert fast_fair_rates(trusted, caps, validate=False) == fast_fair_rates(
        trusted, caps
    )
