"""Integration tests for the fluid-flow Network scheduler."""

import pytest

from repro.netsim import LinkSpec, Network, StarTopology
from repro.simcore import Environment


def make_net(n=4, bandwidth=100.0, latency=0.0, loss=0.0):
    env = Environment()
    topo = StarTopology(
        n, default_spec=LinkSpec(bandwidth=bandwidth, latency=latency, loss_rate=loss)
    )
    return env, Network(env, topo)


def test_single_transfer_duration_matches_analytic():
    env, net = make_net(bandwidth=100.0)
    done = net.transfer(0, 1, size=500.0)
    env.run()
    rec = done.value
    assert rec.duration == pytest.approx(5.0)
    assert env.now == pytest.approx(5.0)


def test_transfer_latency_added():
    env, net = make_net(bandwidth=100.0, latency=0.5)
    done = net.transfer(0, 1, size=100.0)
    env.run()
    # serialization 1s + 2 links x 0.5s latency
    assert done.value.duration == pytest.approx(2.0)


def test_zero_size_transfer_costs_latency_only():
    env, net = make_net(latency=0.25)
    done = net.transfer(0, 1, size=0.0)
    env.run()
    assert done.value.duration == pytest.approx(0.5)


def test_loopback_transfer_is_free():
    env, net = make_net()
    done = net.transfer(2, 2, size=1e9)
    env.run()
    assert done.value.duration == 0.0
    assert env.now == 0.0


def test_utilization_unaffected_by_active_fault_window():
    # Regression: utilization divided historical bytes_carried by the
    # *current* fault-adjusted bandwidth, so a report taken during an
    # active bandwidth dip overstated whole-run utilization 1/factor-fold.
    env, net = make_net(bandwidth=100.0)
    net.transfer(0, 1, size=500.0)
    env.run()  # completes at t=5 with the uplink fully busy
    up = next(l for l in net.topology.links if l.name == "up:0")
    before = up.utilization(10.0)
    up.apply_fault(bandwidth_factor=0.25)  # dip still active at report time
    assert up.utilization(10.0) == pytest.approx(before) == pytest.approx(0.5)
    up.clear_fault(bandwidth_factor=0.25)


def test_negative_size_rejected():
    env, net = make_net()
    with pytest.raises(ValueError):
        net.transfer(0, 1, size=-1.0)


def test_loss_inflates_duration():
    env, net = make_net(bandwidth=100.0, loss=0.05)
    done = net.transfer(0, 1, size=1000.0)
    env.run()
    combined_loss = 1 - 0.95 * 0.95
    assert done.value.duration == pytest.approx(1000 * (1 + combined_loss) / 100.0)


def test_incast_two_flows_to_same_destination():
    """Two pushes into one downlink: each halves, both finish at 2x."""
    env, net = make_net(bandwidth=100.0)
    d1 = net.transfer(0, 2, size=100.0)
    d2 = net.transfer(1, 2, size=100.0)
    env.run()
    assert d1.value.end_time == pytest.approx(2.0)
    assert d2.value.end_time == pytest.approx(2.0)


def test_incast_n_flows_scales_linearly():
    """N simultaneous pushes into the PS: total time = N * S / b (Fig. 1)."""
    n = 8
    env, net = make_net(n=n + 1, bandwidth=100.0)
    dones = [net.transfer(i, n, size=100.0) for i in range(n)]
    env.run()
    for d in dones:
        assert d.value.end_time == pytest.approx(n * 100.0 / 100.0)


def test_disjoint_flows_do_not_interact():
    env, net = make_net(n=4, bandwidth=100.0)
    d1 = net.transfer(0, 1, size=100.0)
    d2 = net.transfer(2, 3, size=100.0)
    env.run()
    assert d1.value.duration == pytest.approx(1.0)
    assert d2.value.duration == pytest.approx(1.0)


def test_staggered_flow_rerating():
    """Second flow arrives halfway; first slows down from then on.

    Flow A: 100 bytes at rate 100 alone. At t=0.5, A has 50 left.
    B starts (same downlink): both at 50. A finishes at 0.5 + 50/50 = 1.5.
    B (100 bytes): 50 moved by t=1.5, then full rate: t=1.5+50/100=2.0.
    """
    env, net = make_net(bandwidth=100.0)

    def starter(env):
        yield env.timeout(0.5)
        return net.transfer(1, 2, size=100.0)

    dA = net.transfer(0, 2, size=100.0)
    pB = env.process(starter(env))
    env.run()
    dB = pB.value
    assert dA.value.end_time == pytest.approx(1.5)
    assert dB.value.end_time == pytest.approx(2.0)


def test_uplink_bottleneck_for_fan_out():
    """One sender to two receivers: sender's uplink is the bottleneck."""
    env, net = make_net(bandwidth=100.0)
    d1 = net.transfer(0, 1, size=100.0)
    d2 = net.transfer(0, 2, size=100.0)
    env.run()
    assert d1.value.end_time == pytest.approx(2.0)
    assert d2.value.end_time == pytest.approx(2.0)


def test_heterogeneous_slow_node():
    """A node with a 10x slower link takes 10x longer (§6.2)."""
    def hetero_topo():
        return StarTopology(
            3,
            default_spec=LinkSpec(bandwidth=100.0, latency=0.0),
            overrides={1: LinkSpec(bandwidth=10.0, latency=0.0)},
        )

    env = Environment()
    net = Network(env, hetero_topo())
    d_fast = net.transfer(0, 2, size=100.0)
    env.run()
    env2 = Environment()
    net2 = Network(env2, hetero_topo())
    d_slow = net2.transfer(1, 2, size=100.0)
    env2.run()
    assert d_slow.value.duration == pytest.approx(10 * d_fast.value.duration)


def test_bulk_time_analytic_helper():
    env, net = make_net(bandwidth=100.0, latency=0.1, loss=0.0)
    assert net.bulk_time(0, 1, 100.0) == pytest.approx(1.0 + 0.2)
    assert net.bulk_time(2, 2, 1e9) == 0.0


def test_flow_records_accumulate():
    env, net = make_net()
    net.transfer(0, 1, size=10.0, tag="push")
    net.transfer(1, 0, size=10.0, tag="pull")
    env.run()
    assert len(net.records) == 2
    assert {r.tag for r in net.records} == {"push", "pull"}


def test_records_disabled():
    env = Environment()
    net = Network(env, StarTopology(2), keep_records=False)
    net.transfer(0, 1, size=10.0)
    env.run()
    assert net.records == []


def test_link_bytes_accounting():
    env, net = make_net(bandwidth=100.0)
    net.transfer(0, 1, size=100.0)
    env.run()
    assert net.link_utilization("up:0") == pytest.approx(1.0)
    assert net.link_utilization("down:1") == pytest.approx(1.0)


def test_transfer_process_generator():
    env, net = make_net(bandwidth=100.0)

    def proc(env):
        rec = yield from net.transfer_process(0, 1, 100.0, tag="gen")
        return rec.duration

    p = env.process(proc(env))
    env.run()
    assert p.value == pytest.approx(1.0)


def test_effective_rate_property():
    env, net = make_net(bandwidth=200.0)
    d = net.transfer(0, 1, size=100.0)
    env.run()
    assert d.value.effective_rate == pytest.approx(200.0)


def test_many_sequential_transfers_deterministic():
    def run():
        env, net = make_net(n=9, bandwidth=1250.0)

        def worker(env, wid):
            for it in range(3):
                yield net.transfer(wid, 8, size=100.0 * (wid + 1), tag=(wid, it))
                yield net.transfer(8, wid, size=50.0, tag=("pull", wid, it))

        for w in range(8):
            env.process(worker(env, w))
        env.run()
        return [(r.tag, round(r.end_time, 9)) for r in net.records]

    assert run() == run()


def test_conservation_total_bytes():
    """Sum of per-link carried bytes equals sum over flows of size x links."""
    env, net = make_net(n=5, bandwidth=77.0)
    sizes = [100.0, 250.0, 30.0, 400.0]
    for i, s in enumerate(sizes):
        net.transfer(i, (i + 1) % 4, size=s)
    env.run()
    total_carried = sum(l.bytes_carried for l in net.topology.links)
    assert total_carried == pytest.approx(2 * sum(sizes), rel=1e-6)
