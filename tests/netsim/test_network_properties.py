"""Property-based tests for the fluid-flow network scheduler."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim import LinkSpec, Network, StarTopology
from repro.simcore import Environment


@st.composite
def _flow_plans(draw):
    n_nodes = draw(st.integers(min_value=2, max_value=6))
    n_flows = draw(st.integers(min_value=1, max_value=10))
    flows = []
    for _ in range(n_flows):
        src = draw(st.integers(min_value=0, max_value=n_nodes - 1))
        dst = draw(
            st.integers(min_value=0, max_value=n_nodes - 1).filter(lambda d: d != src)
        )
        size = draw(st.floats(min_value=1.0, max_value=1e4))
        start = draw(st.floats(min_value=0.0, max_value=5.0))
        flows.append((src, dst, size, start))
    return n_nodes, flows


def _run_plan(n_nodes, flows, bandwidth=1000.0):
    env = Environment()
    topo = StarTopology(n_nodes, default_spec=LinkSpec(bandwidth=bandwidth, latency=0.0))
    net = Network(env, topo)
    events = []

    def starter(env, src, dst, size, start):
        yield env.timeout(start)
        rec = yield net.transfer(src, dst, size)
        return rec

    procs = [env.process(starter(env, *f)) for f in flows]
    env.run()
    return net, [p.value for p in procs]


@given(_flow_plans())
@settings(max_examples=60, deadline=None)
def test_property_all_flows_complete(plan):
    n_nodes, flows = plan
    _net, records = _run_plan(n_nodes, flows)
    assert len(records) == len(flows)
    for rec, (src, dst, size, start) in zip(records, flows):
        assert rec.end_time >= start


@given(_flow_plans())
@settings(max_examples=60, deadline=None)
def test_property_duration_at_least_solo_time(plan):
    """No flow finishes faster than it would alone on an idle network."""
    n_nodes, flows = plan
    net, records = _run_plan(n_nodes, flows)
    for rec, (src, dst, size, start) in zip(records, flows):
        solo = net.bulk_time(src, dst, size)
        assert rec.duration >= solo - 1e-6


@given(_flow_plans())
@settings(max_examples=60, deadline=None)
def test_property_bytes_conserved(plan):
    """Each flow's bytes are carried exactly once on each of its 2 links."""
    n_nodes, flows = plan
    net, _records = _run_plan(n_nodes, flows)
    total_expected = 2 * sum(size for _s, _d, size, _t in flows)
    total_carried = sum(l.bytes_carried for l in net.topology.links)
    assert total_carried == pytest.approx(total_expected, rel=1e-5)


@given(_flow_plans())
@settings(max_examples=40, deadline=None)
def test_property_deterministic_replay(plan):
    n_nodes, flows = plan
    _n1, rec1 = _run_plan(n_nodes, flows)
    _n2, rec2 = _run_plan(n_nodes, flows)
    for a, b in zip(rec1, rec2):
        assert a.end_time == b.end_time


@given(
    st.integers(min_value=1, max_value=12),
    st.floats(min_value=10.0, max_value=1e5),
)
@settings(max_examples=40, deadline=None)
def test_property_incast_completion_exact(n_senders, size):
    """N equal simultaneous pushes to one node finish at exactly N*S/b."""
    env = Environment()
    topo = StarTopology(
        n_senders + 1, default_spec=LinkSpec(bandwidth=100.0, latency=0.0)
    )
    net = Network(env, topo)
    dones = [net.transfer(i, n_senders, size) for i in range(n_senders)]
    env.run()
    expected = n_senders * size / 100.0
    for d in dones:
        assert d.value.end_time == pytest.approx(expected, rel=1e-9)


def test_tiny_remaining_bytes_never_livelock():
    """Regression: flows whose remainder is too small to advance the float
    clock must complete rather than re-arm the timer forever (the t≈17.6s
    livelock found during bring-up)."""
    env = Environment(initial_time=1e9)  # huge timestamps -> coarse ulps
    topo = StarTopology(3, default_spec=LinkSpec(bandwidth=1e9, latency=0.0))
    net = Network(env, topo)

    def staggered(env):
        yield env.timeout(1e-7)
        return net.transfer(1, 2, 1000.0)

    d1 = net.transfer(0, 2, 1000.0)
    p = env.process(staggered(env))
    env.run()
    assert d1.value is not None
    assert p.value.value is not None
