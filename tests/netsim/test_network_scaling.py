"""Behavioral tests for the scaled network core.

Covers the machinery the fast path adds around the solver: rerate
coalescing, decoupled-delta solver skipping, the bounded records ring,
the recorder counter mirror, and capacity refreshes across fault windows
— always with the legacy path as the semantic reference.
"""

import pytest

from repro.netsim.links import LinkSpec
from repro.netsim.network import Network
from repro.netsim.topology import StarTopology
from repro.simcore.environment import Environment


def _star(n=4, bandwidth=100.0, latency=0.0):
    return StarTopology(
        n, default_spec=LinkSpec(bandwidth=bandwidth, latency=latency)
    )


def _records_key(net):
    return [
        (r.fid, r.src, r.dst, r.size, r.tag, r.start_time, r.end_time)
        for r in net.records
    ]


def _burst_run(n_flows=6):
    """All flows to one destination, started in a single instant."""
    env = Environment()
    net = Network(env, _star(n=8))
    for src in range(1, n_flows + 1):
        net.transfer(src, 0, 50.0 * src, tag=src)
    env.run()
    return net, env


def test_same_instant_burst_coalesces_to_one_rerate(monkeypatch):
    monkeypatch.delenv("REPRO_FAIRSHARE", raising=False)
    net, _env_ = _burst_run()
    # 1 coalesced rerate for the 6 same-instant starts, then one per
    # (distinct) completion horizon — instead of one per transfer() call.
    assert net.stats["netsim.rerates"] == 7


def test_burst_records_identical_across_modes(monkeypatch):
    monkeypatch.setenv("REPRO_FAIRSHARE", "legacy")
    legacy_net, legacy_env = _burst_run()
    assert legacy_net.stats["netsim.rerates"] >= 6  # one per transfer()
    monkeypatch.delenv("REPRO_FAIRSHARE", raising=False)
    fast_net, fast_env = _burst_run()
    assert _records_key(fast_net) == _records_key(legacy_net)
    assert repr(fast_env.now) == repr(legacy_env.now)
    assert fast_net.stats["netsim.rerates"] < legacy_net.stats["netsim.rerates"]


def test_decoupled_flows_skip_the_solver(monkeypatch):
    monkeypatch.delenv("REPRO_FAIRSHARE", raising=False)
    env = Environment()
    net = Network(env, _star(n=6, bandwidth=80.0))
    # Disjoint (src, dst) pairs: no shared links, every start/finish is
    # decoupled, so no rerate ever needs the solver.
    net.transfer(0, 1, 100.0)
    env.run()
    net.transfer(2, 3, 100.0)
    net.transfer(4, 5, 100.0)
    env.run()
    assert net.stats["netsim.rerate_skipped"] > 0
    assert net.stats["netsim.fairshare_calls"] == 0
    # Each lone flow got exactly its route's bottleneck capacity.
    for rec in net.records:
        assert rec.duration == pytest.approx(100.0 / 80.0)


def test_coupled_flows_fall_back_to_solver(monkeypatch):
    monkeypatch.delenv("REPRO_FAIRSHARE", raising=False)
    env = Environment()
    net = Network(env, _star(n=4))
    net.transfer(1, 0, 100.0)
    net.transfer(2, 0, 100.0)  # shares link down:0 -> solver required
    env.run()
    assert net.stats["netsim.fairshare_calls"] > 0


def test_legacy_mode_always_solves(monkeypatch):
    monkeypatch.setenv("REPRO_FAIRSHARE", "legacy")
    env = Environment()
    net = Network(env, _star(n=6))
    net.transfer(0, 1, 100.0)
    env.run()
    net.transfer(2, 3, 100.0)
    env.run()
    assert net.stats["netsim.rerate_skipped"] == 0
    assert net.stats["netsim.fairshare_calls"] > 0


def test_max_records_keeps_latest_and_counts_drops():
    env = Environment()
    net = Network(env, _star(), max_records=3)
    for i in range(8):
        net.transfer(1, 0, 10.0, tag=i)
        env.run()
    assert len(net.records) == 3
    assert [r.tag for r in net.records] == [5, 6, 7]  # keep-latest ring
    assert net.stats["netsim.records_dropped"] == 5


def test_max_records_unset_keeps_everything():
    env = Environment()
    net = Network(env, _star())
    for i in range(5):
        net.transfer(1, 0, 10.0, tag=i)
    env.run()
    assert len(net.records) == 5
    assert net.stats["netsim.records_dropped"] == 0


def test_recorder_mirror_receives_netsim_counters():
    class FakeRecorder:
        def __init__(self):
            self.counts = {}

        def incr(self, name, n=1):
            self.counts[name] = self.counts.get(name, 0) + n

    env = Environment()
    net = Network(env, _star())
    rec = FakeRecorder()
    net.recorder = rec
    net.transfer(1, 0, 100.0)
    net.transfer(2, 0, 100.0)
    env.run()
    assert rec.counts["netsim.rerates"] == net.stats["netsim.rerates"]
    assert (
        rec.counts.get("netsim.fairshare_calls", 0)
        == net.stats["netsim.fairshare_calls"]
    )


def _fault_window_run():
    """Bandwidth dips mid-flow on the shared downlink, then recovers."""
    env = Environment()
    topo = _star(n=4, bandwidth=100.0)
    net = Network(env, topo)
    dipped = [l for l in topo.links if l.name == "down:0"]

    def faults():
        yield env.timeout(1.0)
        for link in dipped:
            link.apply_fault(bandwidth_factor=0.25)
        net.refresh_capacities()
        yield env.timeout(2.0)
        for link in dipped:
            link.clear_fault(bandwidth_factor=0.25)
        net.refresh_capacities()

    env.process(faults())
    net.transfer(1, 0, 300.0, tag="a")
    net.transfer(2, 0, 300.0, tag="b")
    env.run()
    return net, env


def test_refresh_capacities_mid_flow_identical_across_modes(monkeypatch):
    monkeypatch.setenv("REPRO_FAIRSHARE", "legacy")
    legacy_net, legacy_env = _fault_window_run()
    monkeypatch.delenv("REPRO_FAIRSHARE", raising=False)
    fast_net, fast_env = _fault_window_run()
    assert _records_key(fast_net) == _records_key(legacy_net)
    assert repr(fast_env.now) == repr(legacy_env.now)
    # The dip stretched the transfers: 600 bytes through a link that spends
    # 2s at 25 B/s cannot finish at the no-fault time of 6.0s.
    assert fast_env.now > 6.0


def test_refresh_capacities_forces_solver_under_fast(monkeypatch):
    monkeypatch.delenv("REPRO_FAIRSHARE", raising=False)
    net, _env_ = _fault_window_run()
    # Both refresh calls must re-solve (capacities changed), on top of the
    # start/finish solves for the coupled pair.
    assert net.stats["netsim.fairshare_calls"] >= 2


def test_route_cache_does_not_stale_latency_or_loss(monkeypatch):
    """Loss/latency are fault-dependent; only the route itself is cached."""
    monkeypatch.delenv("REPRO_FAIRSHARE", raising=False)
    env = Environment()
    topo = _star(n=3, bandwidth=100.0)
    net = Network(env, topo)
    net.transfer(1, 0, 100.0, tag="before")
    env.run()
    for link in topo.links:
        if link.name == "down:0":
            link.apply_fault(extra_loss=0.5)
    net.transfer(1, 0, 100.0, tag="after")
    env.run()
    before = next(r for r in net.records if r.tag == "before")
    after = next(r for r in net.records if r.tag == "after")
    # Loss inflation: same payload takes 1.5x the bytes after the fault.
    assert after.duration == pytest.approx(1.5 * before.duration)
