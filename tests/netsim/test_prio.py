"""Priority/weight-aware transmission scheduling (solver + Network)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim import (
    LinkSpec,
    Network,
    PRIO_BULK,
    PRIO_HIGH,
    PRIO_NORMAL,
    PRIO_URGENT,
    StarTopology,
    max_min_fair_rates,
    netprio_enabled,
    prio_fair_rates,
    weighted_max_min_fair_rates,
)
from repro.netsim.fairshare import fast_fair_rates
from repro.simcore import Environment


def make_net(n=4, bandwidth=1000.0):
    env = Environment()
    topo = StarTopology(n, default_spec=LinkSpec(bandwidth=bandwidth, latency=0.0))
    return env, Network(env, topo)


# ------------------------------------------------------ weighted solver

def test_weighted_shares_split_by_weight():
    rates = weighted_max_min_fair_rates(
        {"a": ["L"], "b": ["L"]}, {"L": 90.0}, {"a": 2.0, "b": 1.0}
    )
    assert rates["a"] == pytest.approx(60.0)
    assert rates["b"] == pytest.approx(30.0)


def test_weighted_validation():
    with pytest.raises(ValueError):
        weighted_max_min_fair_rates({"a": ["L"]}, {"L": 1.0}, {"a": 0.0})
    with pytest.raises(ValueError):
        weighted_max_min_fair_rates({"a": ["L"]}, {"L": 1.0}, {})


@st.composite
def _random_networks(draw):
    n_links = draw(st.integers(min_value=1, max_value=6))
    links = [f"L{i}" for i in range(n_links)]
    caps = {
        l: draw(st.floats(min_value=0.5, max_value=100.0, allow_nan=False))
        for l in links
    }
    n_flows = draw(st.integers(min_value=1, max_value=8))
    routes = {}
    for i in range(n_flows):
        k = draw(st.integers(min_value=1, max_value=n_links))
        routes[f"f{i}"] = draw(
            st.lists(st.sampled_from(links), min_size=k, max_size=k, unique=True)
        )
    return routes, caps


@given(_random_networks())
@settings(max_examples=150, deadline=None)
def test_weighted_all_ones_bit_identical_to_plain(net):
    routes, caps = net
    plain = max_min_fair_rates(routes, caps)
    weighted = weighted_max_min_fair_rates(
        routes, caps, {f: 1.0 for f in routes}
    )
    assert weighted == plain  # exact float equality, not approx


@given(_random_networks())
@settings(max_examples=150, deadline=None)
def test_weighted_never_oversubscribes(net):
    routes, caps = net
    rng = np.random.default_rng(0)
    weights = {f: float(rng.uniform(0.5, 4.0)) for f in routes}
    rates = weighted_max_min_fair_rates(routes, caps, weights)
    load = {l: 0.0 for l in caps}
    for fid, route in routes.items():
        for l in set(route):
            load[l] += rates[fid]
    for l in caps:
        assert load[l] <= caps[l] * (1 + 1e-9)


# ------------------------------------------------------ priority solver

def test_strict_priority_starves_lower_class_on_saturated_link():
    routes = {"hi": ["L"], "lo": ["L"]}
    rates = prio_fair_rates(
        routes, {"L": 100.0}, {"hi": PRIO_HIGH, "lo": PRIO_BULK}
    )
    assert rates["hi"] == pytest.approx(100.0)
    assert rates["lo"] == 0.0


def test_lower_class_takes_leftover_on_unsaturated_links():
    # hi is bottlenecked elsewhere, so L has leftover for lo.
    routes = {"hi": ["narrow", "L"], "lo": ["L"]}
    caps = {"narrow": 10.0, "L": 100.0}
    rates = prio_fair_rates(
        routes, caps, {"hi": PRIO_HIGH, "lo": PRIO_BULK}
    )
    assert rates["hi"] == pytest.approx(10.0)
    assert rates["lo"] == pytest.approx(90.0)


@given(_random_networks())
@settings(max_examples=150, deadline=None)
def test_single_class_delegates_bit_identical(net):
    """Any single class + uniform weights ≡ the plain solver, bit-exact."""
    routes, caps = net
    plain = max_min_fair_rates(routes, caps)
    for cls in (PRIO_URGENT, PRIO_NORMAL, PRIO_BULK):
        rates = prio_fair_rates(
            routes, caps, {f: cls for f in routes},
            solver=max_min_fair_rates,
        )
        assert rates == plain


@given(_random_networks())
@settings(max_examples=150, deadline=None)
def test_multi_class_never_oversubscribes(net):
    routes, caps = net
    rng = np.random.default_rng(1)
    prios = {f: int(rng.integers(0, 4)) for f in routes}
    rates = prio_fair_rates(routes, caps, prios)
    load = {l: 0.0 for l in caps}
    for fid, route in routes.items():
        for l in set(route):
            load[l] += rates[fid]
    for l in caps:
        assert load[l] <= caps[l] * (1 + 1e-6)


@given(_random_networks())
@settings(max_examples=150, deadline=None)
def test_legacy_and_fast_subsolvers_agree_in_prio_path(net):
    """The prio loop must stay mode-agnostic: per-class subproblems solved
    with the legacy scan and the heap solver give the same rates (the
    ``repro check`` legacy-vs-fast differential relies on this)."""
    routes, caps = net
    rng = np.random.default_rng(2)
    prios = {f: int(rng.integers(0, 4)) for f in routes}
    legacy = prio_fair_rates(routes, caps, prios, solver=max_min_fair_rates)
    fast = prio_fair_rates(
        routes, caps, prios,
        solver=lambda r, c: fast_fair_rates(r, c, validate=False),
    )
    assert legacy == fast


# ------------------------------------------------------ Network integration

def test_network_strict_priority_end_to_end():
    env, net = make_net(bandwidth=1000.0)

    def driver(env):
        bulk = net.transfer(2, 1, 1000.0, tag="bulk", prio=PRIO_BULK)
        yield env.timeout(0.5)
        high = net.transfer(3, 1, 500.0, tag="high", prio=PRIO_HIGH)
        rec_h = yield high
        rec_b = yield bulk
        return rec_h, rec_b

    p = env.process(driver(env))
    env.run(until=p)
    rec_h, rec_b = p.value
    # HIGH takes the whole downlink on arrival; BULK resumes afterwards.
    assert rec_h.end_time == pytest.approx(1.0)
    assert rec_b.end_time == pytest.approx(1.5)
    assert net.stats["netsim.prio_preemptions"] == 1
    assert net.stats["netsim.prio_bytes.high"] == pytest.approx(500.0)
    assert net.stats["netsim.prio_bytes.bulk"] == pytest.approx(1000.0)


def test_network_equal_class_keeps_fair_share():
    env, net = make_net(bandwidth=1000.0)

    def driver(env):
        a = net.transfer(2, 1, 500.0, tag="a", prio=PRIO_BULK)
        b = net.transfer(3, 1, 500.0, tag="b", prio=PRIO_BULK)
        ra = yield a
        rb = yield b
        return ra, rb

    p = env.process(driver(env))
    env.run(until=p)
    ra, rb = p.value
    assert ra.end_time == pytest.approx(1.0)  # 500 B each at 500 B/s
    assert rb.end_time == pytest.approx(1.0)
    assert net.stats["netsim.prio_preemptions"] == 0


def test_network_slice_defers_preemption_to_boundary():
    env, net = make_net(bandwidth=1000.0)

    def driver(env):
        bulk = net.transfer(2, 1, 1000.0, tag="bulk", prio=PRIO_BULK,
                            slice_bytes=250.0)
        # At t=0.6 bulk has moved 600 B: mid slice 3 (grid 750/500/250),
        # whose boundary sits at remaining=250 — i.e. t=0.75.
        yield env.timeout(0.6)
        high = net.transfer(3, 1, 500.0, tag="high", prio=PRIO_HIGH)
        rec_h = yield high
        rec_b = yield bulk
        return rec_h, rec_b

    p = env.process(driver(env))
    env.run(until=p)
    rec_h, rec_b = p.value
    # HIGH waits out the in-flight slice (until t=0.75), then takes the
    # link: 500 B / 1000 B/s; bulk's last 250 B follow.
    assert rec_h.end_time == pytest.approx(1.25)
    assert rec_b.end_time == pytest.approx(1.5)


def test_network_slice_preempts_instantly_at_boundary():
    env, net = make_net(bandwidth=1000.0)

    def driver(env):
        bulk = net.transfer(2, 1, 1000.0, tag="bulk", prio=PRIO_BULK,
                            slice_bytes=250.0)
        yield env.timeout(0.5)  # exactly two slices consumed: at a boundary
        high = net.transfer(3, 1, 500.0, tag="high", prio=PRIO_HIGH)
        rec_h = yield high
        rec_b = yield bulk
        return rec_h, rec_b

    p = env.process(driver(env))
    env.run(until=p)
    rec_h, rec_b = p.value
    assert rec_h.end_time == pytest.approx(1.0)  # no wait: boundary hit
    assert rec_b.end_time == pytest.approx(1.5)


def test_transfer_rejects_bad_prio_and_weight():
    env, net = make_net()
    with pytest.raises(ValueError):
        net.transfer(0, 1, 10.0, prio=7)
    with pytest.raises(ValueError):
        net.transfer(0, 1, 10.0, weight=0.0)


def _contended_run(**env_flags):
    """One deterministic contended schedule; returns completion records."""
    import os

    saved = {k: os.environ.get(k) for k in env_flags}
    os.environ.update({k: v for k, v in env_flags.items() if v is not None})
    for k, v in env_flags.items():
        if v is None:
            os.environ.pop(k, None)
    try:
        env, net = make_net(n=6, bandwidth=1000.0)

        def driver(env):
            events = []
            rng = np.random.default_rng(11)
            for i in range(12):
                src = 2 + int(rng.integers(4))
                size = float(rng.integers(100, 900))
                events.append(net.transfer(src, 1, size, tag=("f", i)))
                yield env.timeout(float(rng.uniform(0.01, 0.3)))
            for ev in events:
                yield ev

        p = env.process(driver(env))
        env.run(until=p)
        return [(r.tag, r.start_time, r.end_time) for r in net.records]
    finally:
        for k, v in saved.items():
            if v is None:
                os.environ.pop(k, None)
            else:
                os.environ[k] = v


def test_all_normal_bit_identical_with_prio_on_and_off():
    """Default-prio traffic must not notice the scheduler exists."""
    on = _contended_run(REPRO_NETPRIO=None)  # default: enabled
    off = _contended_run(REPRO_NETPRIO="off")
    assert on == off  # bit-exact virtual times


def test_kill_switch_coerces_classes_to_normal():
    env, net = make_net(bandwidth=1000.0)
    assert netprio_enabled()
    net._prio_on = False  # what REPRO_NETPRIO=off sets at construction

    def driver(env):
        bulk = net.transfer(2, 1, 500.0, tag="bulk", prio=PRIO_BULK)
        high = net.transfer(3, 1, 500.0, tag="high", prio=PRIO_HIGH)
        rb = yield bulk
        rh = yield high
        return rb, rh

    p = env.process(driver(env))
    env.run(until=p)
    rb, rh = p.value
    # Fair share, no starvation: both finish together.
    assert rb.end_time == pytest.approx(rh.end_time)
    assert net.stats["netsim.prio_preemptions"] == 0
