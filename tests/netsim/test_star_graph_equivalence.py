"""Property test: GraphTopology over a star-shaped graph ≡ StarTopology.

StarTopology is the hand-rolled fast path for the paper's single-rack
testbed; GraphTopology is the general shortest-path router. For any star
— including heterogeneous per-node link specs — the two must be
indistinguishable: every route crosses the same links (same specs, same
order, host-uplink then host-downlink), and a fluid-flow Network driving
identical staggered transfer schedules over either topology drains every
flow at the same instant. Hypothesis sweeps node counts, per-node
bandwidth/latency heterogeneity, and overlapping transfer schedules.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

import networkx as nx

from repro.netsim.links import LinkSpec
from repro.netsim.network import Network
from repro.netsim.topology import SWITCH, GraphTopology, StarTopology
from repro.simcore.environment import Environment

# Bounded, well-scaled floats: the property is about routing/fair-share
# equivalence, not float-edge-case handling in LinkSpec itself.
_bandwidths = st.floats(min_value=1.0, max_value=1e4)
_latencies = st.floats(min_value=0.0, max_value=0.5)
_sizes = st.floats(min_value=1.0, max_value=1e6)
_delays = st.floats(min_value=0.0, max_value=10.0)


@st.composite
def star_cases(draw):
    n = draw(st.integers(min_value=2, max_value=6))
    specs = [
        LinkSpec(bandwidth=draw(_bandwidths), latency=draw(_latencies))
        for _ in range(n)
    ]
    n_flows = draw(st.integers(min_value=1, max_value=8))
    flows = [
        (
            draw(st.integers(min_value=0, max_value=n - 1)),
            draw(st.integers(min_value=0, max_value=n - 1)),
            draw(_sizes),
            draw(_delays),
        )
        for _ in range(n_flows)
    ]
    return n, specs, flows


def _star_topology(n, specs):
    return StarTopology(
        n, default_spec=specs[0], overrides={i: s for i, s in enumerate(specs)}
    )


def _star_graph(n, specs):
    g = nx.DiGraph()
    for i, spec in enumerate(specs):
        g.add_edge(i, SWITCH, spec=spec)   # uplink
        g.add_edge(SWITCH, i, spec=spec)   # downlink
    return GraphTopology(g)


def _drain(topology, flows):
    """Run the transfer schedule; return each flow's (start, end) times."""
    env = Environment()
    net = Network(env, topology)
    records = []

    def _submit(src, dst, size):
        def _driver():
            done = net.transfer(src, dst, size)
            rec = yield done
            records.append((rec.start_time, rec.end_time))

        return _driver

    drivers = []
    for src, dst, size, delay in flows:

        def _delayed(src=src, dst=dst, size=size, delay=delay):
            yield env.timeout(delay)
            yield from _submit(src, dst, size)()

        drivers.append(env.process(_delayed()))
    env.run(until=env.all_of(drivers))
    return records


@settings(max_examples=60, deadline=None)
@given(star_cases())
def test_routes_cross_equivalent_links(case):
    n, specs, _flows = case
    star = _star_topology(n, specs)
    graph = _star_graph(n, specs)
    for src in range(n):
        for dst in range(n):
            s_route = star.route(src, dst)
            g_route = graph.route(src, dst)
            assert len(s_route) == len(g_route)
            assert [l.spec for l in s_route] == [l.spec for l in g_route]
            if src != dst:
                # same physical hops in the same order
                assert [l.name for l in s_route] == [f"up:{src}", f"down:{dst}"]
                assert [l.name for l in g_route] == [
                    f"{src}->{SWITCH}",
                    f"{SWITCH}->{dst}",
                ]
            assert star.route_latency(src, dst) == graph.route_latency(src, dst)


@settings(max_examples=40, deadline=None)
@given(star_cases())
def test_fluid_drain_times_identical(case):
    n, specs, flows = case
    star_times = _drain(_star_topology(n, specs), flows)
    graph_times = _drain(_star_graph(n, specs), flows)
    # Same link specs + same flow arrival order = the max-min fair-share
    # computation runs through identical arithmetic: bit-equal, not approx.
    assert star_times == graph_times
