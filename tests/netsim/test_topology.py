"""Unit tests for topologies."""

import networkx as nx
import pytest

from repro.netsim.links import LinkSpec
from repro.netsim.topology import GraphTopology, StarTopology


def test_star_route_is_uplink_plus_downlink():
    topo = StarTopology(4)
    route = topo.route(1, 3)
    assert [l.name for l in route] == ["up:1", "down:3"]


def test_star_loopback_route_empty():
    topo = StarTopology(4)
    assert topo.route(2, 2) == []
    assert topo.route_latency(2, 2) == 0.0
    assert topo.route_loss(2, 2) == 0.0


def test_star_invalid_node_raises():
    topo = StarTopology(3)
    with pytest.raises(ValueError):
        topo.route(0, 3)
    with pytest.raises(ValueError):
        topo.route(-1, 0)


def test_star_latency_sums_links():
    spec = LinkSpec(latency=10e-6)
    topo = StarTopology(2, default_spec=spec)
    assert topo.route_latency(0, 1) == pytest.approx(20e-6)


def test_star_loss_combines_multiplicatively():
    spec = LinkSpec(loss_rate=0.1)
    topo = StarTopology(2, default_spec=spec)
    assert topo.route_loss(0, 1) == pytest.approx(1 - 0.9 * 0.9)


def test_star_heterogeneous_overrides():
    slow = LinkSpec(bandwidth=1e6)
    topo = StarTopology(3, overrides={1: slow})
    assert topo.uplinks[1].bandwidth == 1e6
    assert topo.uplinks[0].bandwidth != 1e6


def test_star_override_unknown_node_raises():
    with pytest.raises(ValueError):
        StarTopology(2, overrides={5: LinkSpec()})


def test_star_n_nodes_validation():
    with pytest.raises(ValueError):
        StarTopology(0)


def test_star_links_deterministic_order():
    topo = StarTopology(2)
    assert [l.name for l in topo.links] == ["up:0", "up:1", "down:0", "down:1"]


def test_linkspec_validation():
    with pytest.raises(ValueError):
        LinkSpec(bandwidth=0)
    with pytest.raises(ValueError):
        LinkSpec(latency=-1)
    with pytest.raises(ValueError):
        LinkSpec(loss_rate=1.0)


def test_link_utilization_zero_elapsed():
    topo = StarTopology(1)
    assert topo.uplinks[0].utilization(0.0) == 0.0


def test_graph_topology_routes_shortest_path():
    g = nx.DiGraph()
    spec = LinkSpec(bandwidth=100.0)
    g.add_edge("a", "sw1", spec=spec)
    g.add_edge("sw1", "sw2", spec=spec)
    g.add_edge("sw2", "b", spec=spec)
    topo = GraphTopology(g)
    route = topo.route("a", "b")
    assert [l.name for l in route] == ["a->sw1", "sw1->sw2", "sw2->b"]


def test_graph_topology_no_path_raises():
    g = nx.DiGraph()
    g.add_edge("a", "b", spec=LinkSpec())
    g.add_node("c")
    topo = GraphTopology(g)
    with pytest.raises(ValueError):
        topo.route("a", "c")


def test_graph_topology_missing_spec_raises():
    g = nx.DiGraph()
    g.add_edge("a", "b")
    with pytest.raises(ValueError):
        GraphTopology(g)


def test_graph_topology_requires_digraph():
    with pytest.raises(TypeError):
        GraphTopology(nx.Graph())
