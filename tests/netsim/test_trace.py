"""Tests for Chrome-trace export."""

import json

from repro.cluster import ClusterSpec, DistributedTrainer, TimingEngine, TrainingPlan
from repro.hardware import NoJitter
from repro.netsim.trace import (
    flows_to_trace_events,
    iterations_to_trace_events,
    write_chrome_trace,
)
from repro.nn.models import get_card
from repro.sync import BSP


def run_small():
    spec = ClusterSpec(n_workers=2, jitter=NoJitter())
    plan = TrainingPlan(n_epochs=1, iterations_per_epoch=2)
    engine = TimingEngine(get_card("resnet50-cifar10"), spec, total_iterations=2)
    trainer = DistributedTrainer(spec, plan, engine, BSP())
    res = trainer.run()
    return trainer, res


def test_flow_events_have_required_fields():
    trainer, _res = run_small()
    events = flows_to_trace_events(trainer.network.records)
    assert events
    for ev in events:
        assert ev["ph"] == "X"
        assert ev["dur"] >= 1.0
        assert "bytes" in ev["args"]


def test_iteration_events_pair_compute_and_sync():
    _trainer, res = run_small()
    events = iterations_to_trace_events(res.recorder.iterations)
    assert len(events) == 2 * res.recorder.total_iterations
    names = {e["name"].split()[0] for e in events}
    assert names == {"compute", "sync"}


def test_iteration_events_are_contiguous():
    _trainer, res = run_small()
    events = iterations_to_trace_events(res.recorder.iterations)
    by_tid = {}
    for e in events:
        by_tid.setdefault(e["tid"], []).append(e)
    for tid, evs in by_tid.items():
        evs.sort(key=lambda e: e["ts"])
        for a, b in zip(evs, evs[1:]):
            assert b["ts"] >= a["ts"] + a["dur"] - 2  # 2us rounding slack


def test_write_chrome_trace_valid_json(tmp_path):
    trainer, res = run_small()
    path = tmp_path / "trace.json"
    n = write_chrome_trace(path, trainer.network.records, res.recorder.iterations)
    payload = json.loads(path.read_text())
    assert len(payload["traceEvents"]) == n
    assert n > 0
