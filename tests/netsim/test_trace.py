"""Tests for Chrome-trace export."""

import json

from repro.cluster import ClusterSpec, DistributedTrainer, TimingEngine, TrainingPlan
from repro.hardware import NoJitter
from repro.netsim.trace import (
    flows_to_trace_events,
    iterations_to_trace_events,
    write_chrome_trace,
)
from repro.nn.models import get_card
from repro.sync import BSP


def run_small():
    spec = ClusterSpec(n_workers=2, jitter=NoJitter())
    plan = TrainingPlan(n_epochs=1, iterations_per_epoch=2)
    engine = TimingEngine(get_card("resnet50-cifar10"), spec, total_iterations=2)
    trainer = DistributedTrainer(spec, plan, engine, BSP())
    res = trainer.run()
    return trainer, res


def test_flow_events_have_required_fields():
    trainer, _res = run_small()
    events = flows_to_trace_events(trainer.network.records)
    assert events
    for ev in events:
        assert ev["ph"] == "X"
        assert ev["dur"] >= 1.0
        assert "bytes" in ev["args"]


def test_iteration_events_pair_compute_and_sync():
    _trainer, res = run_small()
    events = iterations_to_trace_events(res.recorder.iterations)
    assert len(events) == 2 * res.recorder.total_iterations
    names = {e["name"].split()[0] for e in events}
    assert names == {"compute", "sync"}


def test_iteration_events_are_contiguous():
    _trainer, res = run_small()
    events = iterations_to_trace_events(res.recorder.iterations)
    by_tid = {}
    for e in events:
        by_tid.setdefault(e["tid"], []).append(e)
    for tid, evs in by_tid.items():
        evs.sort(key=lambda e: e["ts"])
        for a, b in zip(evs, evs[1:]):
            assert b["ts"] >= a["ts"] + a["dur"] - 2  # 2us rounding slack


def test_write_chrome_trace_valid_json(tmp_path):
    trainer, res = run_small()
    path = tmp_path / "trace.json"
    n = write_chrome_trace(path, trainer.network.records, res.recorder.iterations)
    payload = json.loads(path.read_text())
    assert len(payload["traceEvents"]) == n
    assert n > 0


def test_empty_inputs_produce_empty_trace(tmp_path):
    assert flows_to_trace_events([]) == []
    assert iterations_to_trace_events([]) == []
    path = tmp_path / "empty.json"
    assert write_chrome_trace(path) == 0
    assert json.loads(path.read_text()) == {"traceEvents": []}


def test_out_of_order_records_are_sorted_in_file(tmp_path):
    trainer, res = run_small()
    path = tmp_path / "trace.json"
    # Feed records in reverse: the file must still come out time-ordered.
    write_chrome_trace(
        path,
        list(reversed(trainer.network.records)),
        list(reversed(res.recorder.iterations)),
    )
    events = json.loads(path.read_text())["traceEvents"]
    ts = [e["ts"] for e in events]
    assert ts == sorted(ts)


def test_trace_event_schema(tmp_path):
    """Every event carries the Trace Event Format required fields with
    the right types (Perfetto rejects malformed ones silently)."""
    trainer, res = run_small()
    path = tmp_path / "trace.json"
    write_chrome_trace(path, trainer.network.records, res.recorder.iterations)
    events = json.loads(path.read_text())["traceEvents"]
    assert events
    for ev in events:
        assert ev["ph"] == "X"
        assert isinstance(ev["name"], str) and ev["name"]
        assert isinstance(ev["ts"], float) and ev["ts"] >= 0.0
        assert isinstance(ev["dur"], float) and ev["dur"] >= 1.0
        assert isinstance(ev["pid"], str)
        assert isinstance(ev["tid"], str)


def test_flow_events_carry_structured_phase_args():
    trainer, _res = run_small()
    events = flows_to_trace_events(trainer.network.records)
    tagged = [e for e in events if "phase" in e["args"]]
    assert tagged, "conventional (phase, worker, iteration) tags not parsed"
    for ev in tagged:
        assert ev["args"]["phase"] in {"bsp-push", "bsp-pull"}
        assert isinstance(ev["args"]["worker"], int)
        assert isinstance(ev["args"]["iteration"], int)


def test_untupled_tags_do_not_gain_phase_args():
    from repro.netsim.trace import _tag_args

    assert _tag_args(None) == {}
    assert _tag_args("plain-string") == {}
    assert _tag_args(("phase-only",)) == {"phase": "phase-only"}
    assert _tag_args((1, 2)) == {}
