"""Tests for background-traffic generators."""

import numpy as np
import pytest

from repro.netsim import LinkSpec, Network, PRIO_BULK, PRIO_NORMAL, StarTopology
from repro.netsim.traffic import constant_background_load, poisson_background
from repro.simcore import Environment


def make_net(n=4, bandwidth=1000.0):
    env = Environment()
    topo = StarTopology(n, default_spec=LinkSpec(bandwidth=bandwidth, latency=0.0))
    return env, Network(env, topo)


def test_poisson_background_injects_flows():
    env, net = make_net()
    rng = np.random.default_rng(0)
    p = env.process(
        poisson_background(env, net, [(0, 1)], mean_interarrival=0.5,
                           mean_size=100.0, rng=rng, until=10.0)
    )
    env.run()
    assert p.value > 5
    assert any(
        isinstance(r.tag, tuple) and r.tag[0] == "background" for r in net.records
    )


def test_poisson_background_validation():
    env, net = make_net()
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        next(poisson_background(env, net, [], 1.0, 1.0, rng))
    with pytest.raises(ValueError):
        next(poisson_background(env, net, [(0, 1)], 0.0, 1.0, rng))


def test_poisson_background_deterministic():
    def run():
        env, net = make_net()
        rng = np.random.default_rng(7)
        p = env.process(
            poisson_background(env, net, [(0, 1), (2, 3)], 0.3, 50.0, rng, until=5.0)
        )
        env.run()
        return p.value, len(net.records)

    assert run() == run()


def _probe_transfer_time(with_load, probe_prio):
    env, net = make_net(bandwidth=1000.0)
    if with_load:
        env.process(
            constant_background_load(env, net, 2, 1, load_fraction=0.5, until=100.0)
        )

    def measured(env):
        yield env.timeout(1.0)  # let the load reach steady state
        rec = yield net.transfer(0, 1, 5000.0, tag="probe", prio=probe_prio)
        return rec.duration

    p = env.process(measured(env))
    env.run(until=p)
    return p.value


def test_constant_load_slows_competing_flow():
    """A 50% background load roughly halves a same-class transfer's rate."""
    free = _probe_transfer_time(False, PRIO_BULK)
    loaded = _probe_transfer_time(True, PRIO_BULK)
    assert free == pytest.approx(5.0)
    # Under fair sharing the background's own chunks dilate (it only
    # achieves ~2/3 duty), so the probe sees rate 2/3·b: duration 1.5x.
    assert loaded == pytest.approx(1.5 * free, rel=0.05)


def test_training_class_preempts_background_load():
    """Background flows are BULK: a NORMAL probe is not slowed at all."""
    free = _probe_transfer_time(False, PRIO_NORMAL)
    loaded = _probe_transfer_time(True, PRIO_NORMAL)
    assert free == pytest.approx(5.0)
    assert loaded == pytest.approx(free, rel=1e-6)


def test_constant_load_tracks_fault_windows():
    """Chunk size follows the *effective* bandwidth through a fault window.

    Regression: the chunk was sized once from the healthy bandwidth, so
    during a 10x bandwidth dip each chunk took 10x longer than budgeted and
    the tenant ran at ~91% duty instead of its advertised 50%.
    """
    env, net = make_net(bandwidth=1000.0)
    route = net.topology.route(2, 1)

    def fault_window(env):
        yield env.timeout(5.0)
        for link in route:
            link.apply_fault(bandwidth_factor=0.1)
        net.refresh_capacities()
        yield env.timeout(5.0)
        for link in route:
            link.clear_fault(bandwidth_factor=0.1)
        net.refresh_capacities()

    env.process(fault_window(env))
    env.process(
        constant_background_load(env, net, 2, 1, load_fraction=0.5, until=15.0)
    )
    env.run(until=15.0)

    in_window = sum(
        r.size for r in net.records
        if isinstance(r.tag, tuple) and r.tag[0] == "bg-load"
        and 5.0 <= r.end_time <= 10.0
    )
    # Advertised load over the dip: 0.5 x 100 B/s x 5 s = 250 B. The old
    # code kept 50 B chunks (sized for the healthy link) and pushed ~450 B.
    assert in_window == pytest.approx(0.5 * 100.0 * 5.0, rel=0.15)


def test_constant_load_validation():
    env, net = make_net()
    with pytest.raises(ValueError):
        next(constant_background_load(env, net, 0, 1, load_fraction=0.0))
    with pytest.raises(ValueError):
        next(constant_background_load(env, net, 1, 1, load_fraction=0.5))
