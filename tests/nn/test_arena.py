"""Unit tests for the flat parameter/gradient arena."""

import numpy as np
import pytest

from repro.core.pgp import layer_importance
from repro.nn.arena import (
    AggregateView,
    ArenaLayout,
    ArenaView,
    ParamArena,
    arena_of,
    flat_layer_importance,
    merge_slices,
)
from repro.nn.models.registry import get_card


def _layout():
    return ArenaLayout(
        {"a": ("a.w", "a.b"), "b": ("b.w", "b.b"), "c": ("c.w",)},
        {
            "a.w": (2, 3),
            "a.b": (3,),
            "b.w": (4, 3),
            "b.b": (3,),
            "c.w": (5,),
        },
    )


def test_merge_slices_coalesces_adjacent_runs():
    assert merge_slices([]) == []
    got = merge_slices([slice(3, 6), slice(0, 3), slice(10, 12)])
    assert got == [slice(0, 6), slice(10, 12)]
    # overlap also merges
    assert merge_slices([slice(0, 4), slice(2, 8)]) == [slice(0, 8)]


def test_layout_offsets_follow_layer_order():
    layout = _layout()
    assert layout.names == ("a.w", "a.b", "b.w", "b.b", "c.w")
    assert layout.size == 6 + 3 + 12 + 3 + 5
    assert layout.name_slices["a.w"] == slice(0, 6)
    assert layout.name_slices["b.w"] == slice(9, 21)
    assert layout.layer_slices["a"] == slice(0, 9)
    assert layout.layer_slices["b"] == slice(9, 24)
    assert layout.slices_of(("a.w", "a.b", "b.w")) == [slice(0, 21)]
    # cached: same key returns the same object
    assert layout.slices_of(("a.w",)) is layout.slices_of(("a.w",))


def test_sum_groups_cover_every_parameter_once():
    layout = _layout()
    gather_idx, groups, singles = layout.sum_groups()
    grouped = [n for _, _, _, names in groups for n in names]
    single_names = [n for n, _ in singles]
    assert sorted(grouped + single_names) == sorted(layout.names)
    # the two size-3 biases batch together; the rest are singletons
    assert any(names == ("a.b", "b.b") for _, _, _, names in groups)
    covered = set(gather_idx.tolist())
    for _, _, _, names in groups:
        for n in names:
            sl = layout.name_slices[n]
            assert set(range(sl.start, sl.stop)) <= covered


def test_arena_view_is_live_and_ordered():
    layout = _layout()
    plane = layout.new_plane()
    view = ArenaView(plane, layout)
    assert view.is_full()
    view["a.w"][0, 0] = 7.0
    assert plane[0] == 7.0
    plane[9] = -2.0
    assert view["b.w"].flat[0] == -2.0
    assert list(view) == list(layout.names)
    sub = view.restrict(["a.b", "b.b"])
    assert not sub.is_full()
    assert list(sub) == ["a.b", "b.b"]
    with pytest.raises(KeyError):
        sub["a.w"]
    with pytest.raises(KeyError):
        view.restrict(["nope"])


def test_aggregate_view_tracks_live_seen_set():
    layout = _layout()
    plane = layout.new_plane()
    seen: set = set()
    agg = AggregateView(plane, layout, seen)
    assert "a.w" not in agg
    with pytest.raises(KeyError):
        agg["a.w"]
    seen.update(["a.w", "a.b"])
    assert len(agg) == 2
    assert list(agg) == ["a.w", "a.b"]
    np.testing.assert_array_equal(agg["a.w"], np.zeros((2, 3)))


def test_param_arena_binds_module_parameters():
    card = get_card("resnet50-cifar10")
    model = card.make_mini(seed=0)
    before = {n: p.data.copy() for n, p in model.named_parameters()}
    arena = ParamArena(model)
    assert arena_of(model) is arena
    for name, p in model.named_parameters():
        np.testing.assert_array_equal(p.data, before[name])
        assert np.shares_memory(p.data, arena.flat)  # a view into the plane
    # in-place parameter updates land in the plane
    name0 = arena.layout.names[0]
    p0 = dict(model.named_parameters())[name0]
    p0.data[...] = 3.5
    assert (arena.flat[arena.layout.name_slices[name0]] == 3.5).all()


def test_gather_grads_returns_fresh_plane_each_call():
    card = get_card("resnet50-cifar10")
    model = card.make_mini(seed=0)
    arena = ParamArena(model)
    for _, p in model.named_parameters():
        p.grad = np.ones_like(p.data)
    g1 = arena.gather_grads()
    g2 = arena.gather_grads()
    assert g1.plane is not g2.plane
    assert g1.is_full()
    np.testing.assert_array_equal(g1.plane, g2.plane)


def test_flat_layer_importance_matches_dict_path_bitwise():
    card = get_card("inceptionv3-cifar100")
    model = card.make_mini(seed=0)
    arena = ParamArena(model)
    layout = arena.layout
    rng = np.random.default_rng(42)
    grads_plane = rng.standard_normal(layout.size) * 10.0
    seen = set(layout.names)
    agg = AggregateView(grads_plane, layout, seen)
    flat = flat_layer_importance(agg, arena.view(), layout.layer_params)
    dict_grads = {n: np.asarray(agg[n]) for n in layout.names}
    dict_params = {n: p.data for n, p in model.named_parameters()}
    ref = layer_importance(dict_grads, dict_params, layout.layer_params)
    assert flat.keys() == ref.keys()
    for layer in ref:
        assert repr(flat[layer]) == repr(ref[layer]), layer


def test_flat_layer_importance_unseen_layer_is_inf():
    layout = _layout()
    params = ArenaView(layout.new_plane(), layout)
    seen = {"a.w", "a.b", "b.w"}  # b.b missing -> layer b unseen
    agg = AggregateView(layout.new_plane(), layout, seen)
    out = flat_layer_importance(agg, params, layout.layer_params)
    assert out["a"] == 0.0
    assert out["b"] == float("inf")
    assert out["c"] == float("inf")
