"""Gradient checks for the transformer components (attention is the most
gradient-bug-prone part of the stack)."""

import numpy as np

from repro.autograd import Tensor, grad_check
from repro.nn import LayerNorm, MultiHeadSelfAttention, TransformerBlock, GELU
from repro.nn.loss import qa_span_loss
from repro.nn.models import TinyBERT


def rng(seed=0):
    return np.random.default_rng(seed)


def test_attention_gradcheck_small():
    attn = MultiHeadSelfAttention(dim=4, n_heads=2, rng=rng(0))
    x = Tensor(rng(1).normal(size=(1, 3, 4)) * 0.5, requires_grad=True)
    w = Tensor(rng(2).normal(size=(1, 3, 4)))
    grad_check(lambda a: (attn(a) * w).sum(), [x], rtol=1e-3, atol=1e-5)


def test_attention_weight_gradcheck():
    attn = MultiHeadSelfAttention(dim=4, n_heads=1, rng=rng(3))
    x = Tensor(rng(4).normal(size=(1, 2, 4)) * 0.5)
    q_w = attn.q_proj.weight
    grad_check(lambda w: (attn(x) ** 2).sum(), [q_w], rtol=1e-3, atol=1e-5)


def test_transformer_block_gradcheck_input():
    blk = TransformerBlock(dim=4, n_heads=2, rng=rng(5))
    x = Tensor(rng(6).normal(size=(1, 2, 4)) * 0.5, requires_grad=True)
    grad_check(lambda a: (blk(a) ** 2).sum(), [x], rtol=1e-3, atol=1e-5)


def test_gelu_gradcheck():
    g = GELU()
    x = Tensor(rng(7).normal(size=(3, 2)), requires_grad=True)
    grad_check(lambda a: (g(a) ** 2).sum(), [x], rtol=1e-4)


def test_layernorm_gamma_beta_gradcheck():
    ln = LayerNorm(3)
    x = Tensor(rng(8).normal(size=(2, 3)))
    grad_check(
        lambda g, b: (ln(x) * Tensor(rng(9).normal(size=(2, 3)))).sum(),
        [ln.gamma, ln.beta],
        rtol=1e-4,
    )


def test_tinybert_span_loss_end_to_end_gradcheck():
    """Full model chain: embedding -> blocks -> span head -> loss."""
    model = TinyBERT(vocab_size=12, max_seq=4, dim=4, n_heads=2, n_layers=1, seed=0)
    tokens = rng(10).integers(0, 12, size=(2, 4))
    starts, ends = np.array([0, 1]), np.array([2, 3])
    emb = model.tok_emb.weight

    def loss_of(_w):
        s, e = model(tokens)
        return qa_span_loss(s, e, starts, ends)

    grad_check(loss_of, [emb], rtol=2e-3, atol=1e-5)


def test_attention_permutation_equivariance():
    """Self-attention without positions is permutation-equivariant."""
    attn = MultiHeadSelfAttention(dim=8, n_heads=2, rng=rng(11))
    x = rng(12).normal(size=(1, 5, 8))
    perm = rng(13).permutation(5)
    out = attn(Tensor(x)).data
    out_perm = attn(Tensor(x[:, perm])).data
    assert np.allclose(out[:, perm], out_perm, atol=1e-10)
