"""Unit tests for nn layers."""

import numpy as np
import pytest

from repro.autograd import Tensor, grad_check
from repro.nn import (
    BatchNorm2d,
    Conv2d,
    Dropout,
    Embedding,
    Flatten,
    GELU,
    LayerNorm,
    Linear,
    MaxPool2d,
    ReLU,
    Tanh,
)


def rng(seed=0):
    return np.random.default_rng(seed)


def test_linear_shapes_and_grad():
    layer = Linear(3, 5, rng())
    x = Tensor(np.ones((2, 3)), requires_grad=True)
    out = layer(x)
    assert out.shape == (2, 5)
    out.sum().backward()
    assert layer.weight.grad.shape == (3, 5)
    assert layer.bias.grad.shape == (5,)


def test_linear_no_bias():
    layer = Linear(3, 5, rng(), bias=False)
    assert layer.bias is None
    assert len(layer.parameters()) == 1


def test_linear_gradcheck():
    layer = Linear(2, 3, rng(1))
    x = Tensor(rng(2).normal(size=(2, 2)), requires_grad=True)
    grad_check(lambda a: (layer(a) ** 2).sum(), [x])


def test_conv2d_layer_shapes():
    layer = Conv2d(3, 6, 3, rng(), padding=1)
    out = layer(Tensor(np.zeros((2, 3, 8, 8))))
    assert out.shape == (2, 6, 8, 8)


def test_batchnorm_normalises_in_train_mode():
    bn = BatchNorm2d(4)
    x = Tensor(rng().normal(loc=5.0, scale=3.0, size=(8, 4, 6, 6)))
    out = bn(x)
    assert np.allclose(out.data.mean(axis=(0, 2, 3)), 0.0, atol=1e-6)
    assert np.allclose(out.data.std(axis=(0, 2, 3)), 1.0, atol=1e-2)


def test_batchnorm_running_stats_update():
    bn = BatchNorm2d(2, momentum=0.5)
    x = Tensor(np.full((4, 2, 3, 3), 10.0))
    bn(x)
    assert np.allclose(bn.running_mean, 5.0)  # 0.5*0 + 0.5*10


def test_batchnorm_eval_uses_running_stats():
    bn = BatchNorm2d(2)
    x = Tensor(rng().normal(size=(4, 2, 3, 3)))
    for _ in range(50):
        bn(x)
    bn.eval()
    out_eval = bn(x)
    # After many updates running stats ≈ batch stats, so eval ≈ train output.
    bn.train()
    out_train = bn(x)
    assert np.allclose(out_eval.data, out_train.data, atol=0.15)


def test_batchnorm_rejects_non_nchw():
    with pytest.raises(ValueError):
        BatchNorm2d(2)(Tensor(np.zeros((4, 2))))


def test_batchnorm_gamma_beta_learnable():
    bn = BatchNorm2d(3)
    x = Tensor(rng().normal(size=(4, 3, 2, 2)), requires_grad=True)
    bn(x).sum().backward()
    assert bn.gamma.grad is not None
    assert bn.beta.grad is not None


def test_layernorm_normalises_last_dim():
    ln = LayerNorm(8)
    x = Tensor(rng().normal(loc=3.0, size=(4, 8)))
    out = ln(x)
    assert np.allclose(out.data.mean(axis=-1), 0.0, atol=1e-6)


def test_layernorm_gradcheck():
    ln = LayerNorm(3)
    x = Tensor(rng(3).normal(size=(2, 3)), requires_grad=True)
    grad_check(lambda a: (ln(a) * Tensor(rng(4).normal(size=(2, 3)))).sum(), [x])


def test_activations_shapes():
    x = Tensor(rng().normal(size=(3, 3)))
    for layer in [ReLU(), Tanh(), GELU()]:
        assert layer(x).shape == (3, 3)


def test_gelu_matches_reference():
    from scipy.stats import norm as norm_dist

    x = np.linspace(-3, 3, 50)
    ours = GELU()(Tensor(x)).data
    exact = x * norm_dist.cdf(x)
    assert np.allclose(ours, exact, atol=5e-3)


def test_dropout_layer_respects_training_flag():
    d = Dropout(0.5, rng())
    x = Tensor(np.ones(100))
    d.eval()
    assert np.allclose(d(x).data, 1.0)
    d.train()
    assert (d(x).data == 0).any()


def test_flatten():
    out = Flatten()(Tensor(np.zeros((2, 3, 4, 5))))
    assert out.shape == (2, 60)


def test_maxpool_layer():
    out = MaxPool2d(2)(Tensor(np.zeros((1, 1, 4, 4))))
    assert out.shape == (1, 1, 2, 2)


def test_embedding_layer():
    emb = Embedding(10, 4, rng())
    out = emb(np.array([[1, 2], [3, 4]]))
    assert out.shape == (2, 2, 4)
