"""Integration: every model family actually learns its task.

Short single-node trainings (no cluster) proving the full stack —
init → forward → loss → backward → SGD — optimises each architecture the
accuracy experiments rely on.
"""

import numpy as np
import pytest

from repro.data import make_extractive_qa, make_image_classification
from repro.nn import accuracy, cross_entropy, qa_span_accuracy, qa_span_loss
from repro.nn.models import MiniInception, MiniResNet, MiniVGG, TinyBERT
from repro.optim import SGD


def train_classifier(model, n_classes, epochs, lr=0.1, image_size=8, n=240, seed=0):
    ds = make_image_classification(
        n, n_classes=n_classes, image_size=image_size, noise=1.0, seed=seed
    )
    opt = SGD(model, lr=lr, momentum=0.9)
    losses = []
    for epoch in range(epochs):
        rng = np.random.default_rng(epoch)
        perm = rng.permutation(n)
        for s in range(0, n - 16, 16):
            idx = perm[s : s + 16]
            model.zero_grad()
            loss = cross_entropy(model(ds.inputs[idx]), ds.targets[idx])
            loss.backward()
            opt.step()
            losses.append(loss.item())
    final_acc = accuracy(model(ds.inputs), ds.targets)
    return losses, final_acc


def _mean(xs):
    return sum(xs) / len(xs)


def test_minivgg_converges():
    # No batch norm in the VGG family: needs a gentler LR than the others.
    model = MiniVGG(n_classes=4, image_size=8, width=4, head_width=32, seed=0)
    losses, acc = train_classifier(model, 4, epochs=6, lr=0.01)
    assert _mean(losses[-10:]) < 0.6 * _mean(losses[:10])
    assert acc > 0.7


def test_miniresnet_converges():
    model = MiniResNet(n_classes=4, width=4, blocks_per_stage=(1,), seed=0)
    losses, acc = train_classifier(model, 4, epochs=3)
    assert _mean(losses[-10:]) < 0.7 * _mean(losses[:10])
    assert acc > 0.7


def test_miniinception_converges():
    model = MiniInception(n_classes=4, width=4, n_blocks=1, seed=0)
    losses, acc = train_classifier(model, 4, epochs=3)
    assert _mean(losses[-10:]) < 0.8 * _mean(losses[:10])
    assert acc > 0.7


def test_tinybert_learns_span_extraction():
    model = TinyBERT(vocab_size=32, max_seq=12, dim=16, n_heads=2, n_layers=1, seed=0)
    ds = make_extractive_qa(360, seq_len=12, vocab_size=32, seed=0)
    opt = SGD(model, lr=0.05, momentum=0.9)
    first_loss = last_loss = None
    for epoch in range(4):
        rng = np.random.default_rng(epoch)
        perm = rng.permutation(len(ds))
        for s in range(0, len(ds) - 12, 12):
            idx = perm[s : s + 12]
            model.zero_grad()
            s_log, e_log = model(ds.inputs[idx])
            loss = qa_span_loss(
                s_log, e_log, ds.targets[idx, 0], ds.targets[idx, 1]
            )
            loss.backward()
            opt.step()
            if first_loss is None:
                first_loss = loss.item()
            last_loss = loss.item()
    assert last_loss < 0.6 * first_loss
    s_log, e_log = model(ds.inputs)
    f1 = qa_span_accuracy(s_log, e_log, ds.targets[:, 0], ds.targets[:, 1])
    assert f1 > 0.5  # random baseline is 1/12 ≈ 0.08
