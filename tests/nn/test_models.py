"""Unit tests for the model zoo, losses, and model cards."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn import (
    MultiHeadSelfAttention,
    TransformerBlock,
    accuracy,
    cross_entropy,
    mse_loss,
    qa_span_accuracy,
    qa_span_loss,
)
from repro.nn.models import (
    MLP,
    MODEL_CARDS,
    MiniInception,
    MiniResNet,
    MiniVGG,
    TinyBERT,
    get_card,
    synthetic_layer_sizes,
)


def rng(seed=0):
    return np.random.default_rng(seed)


# ----------------------------------------------------------------- losses
def test_cross_entropy_uniform_logits():
    logits = Tensor(np.zeros((4, 10)), requires_grad=True)
    loss = cross_entropy(logits, np.zeros(4, dtype=int))
    assert loss.item() == pytest.approx(np.log(10))


def test_cross_entropy_perfect_prediction_low_loss():
    logits = np.full((2, 3), -20.0)
    logits[0, 1] = logits[1, 2] = 20.0
    loss = cross_entropy(Tensor(logits, requires_grad=True), np.array([1, 2]))
    assert loss.item() < 1e-6


def test_cross_entropy_validation():
    with pytest.raises(ValueError):
        cross_entropy(Tensor(np.zeros(3), requires_grad=True), np.array([0]))
    with pytest.raises(ValueError):
        cross_entropy(Tensor(np.zeros((2, 3)), requires_grad=True), np.array([0]))
    with pytest.raises(TypeError):
        cross_entropy(Tensor(np.zeros((2, 3)), requires_grad=True), np.array([0.5, 1.0]))


def test_cross_entropy_gradient_signs():
    logits = Tensor(np.zeros((1, 3)), requires_grad=True)
    cross_entropy(logits, np.array([0])).backward()
    assert logits.grad[0, 0] < 0  # push up the true class
    assert logits.grad[0, 1] > 0


def test_mse_loss():
    pred = Tensor(np.array([1.0, 2.0]), requires_grad=True)
    assert mse_loss(pred, np.array([0.0, 0.0])).item() == pytest.approx(2.5)


def test_accuracy_metric():
    logits = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 0.0]])
    assert accuracy(logits, np.array([0, 1, 1])) == pytest.approx(2 / 3)


def test_qa_span_loss_and_accuracy():
    s = Tensor(np.zeros((2, 8)), requires_grad=True)
    e = Tensor(np.zeros((2, 8)), requires_grad=True)
    starts, ends = np.array([1, 2]), np.array([3, 4])
    loss = qa_span_loss(s, e, starts, ends)
    assert loss.item() == pytest.approx(np.log(8))
    acc = qa_span_accuracy(s, e, starts, ends)
    assert 0.0 <= acc <= 1.0


# ----------------------------------------------------------------- models
def test_mlp_forward_and_train_step():
    m = MLP([8, 16, 3], seed=0)
    x = np.random.default_rng(0).normal(size=(5, 8))
    out = m(x)
    assert out.shape == (5, 3)
    cross_entropy(out, np.array([0, 1, 2, 0, 1])).backward()
    assert all(p.grad is not None for p in m.parameters())


def test_mlp_validation():
    with pytest.raises(ValueError):
        MLP([4])


def test_mlp_flattens_images():
    m = MLP([3 * 4 * 4, 8, 2], seed=0)
    assert m(np.zeros((2, 3, 4, 4))).shape == (2, 2)


def test_minivgg_forward_backward():
    m = MiniVGG(n_classes=10, seed=0)
    x = np.random.default_rng(1).normal(size=(2, 3, 16, 16))
    out = m(x)
    assert out.shape == (2, 10)
    cross_entropy(out, np.array([3, 7])).backward()
    assert all(p.grad is not None for p in m.parameters())


def test_minivgg_param_heavy_head():
    """VGG family property: classifier head holds most parameters."""
    m = MiniVGG(seed=0)
    head = sum(p.size for _n, p in m.classifier.named_parameters())
    total = m.num_parameters()
    assert head / total > 0.5


def test_minivgg_rejects_bad_image_size():
    with pytest.raises(ValueError):
        MiniVGG(image_size=10)


def test_miniresnet_forward_backward():
    m = MiniResNet(n_classes=10, seed=0)
    x = np.random.default_rng(2).normal(size=(2, 3, 16, 16))
    out = m(x)
    assert out.shape == (2, 10)
    cross_entropy(out, np.array([0, 1])).backward()
    assert all(p.grad is not None for p in m.parameters())


def test_miniresnet_depth_configurable():
    shallow = MiniResNet(blocks_per_stage=(1, 1), seed=0)
    deep = MiniResNet(blocks_per_stage=(2, 2), seed=0)
    assert deep.num_parameters() > shallow.num_parameters()


def test_miniinception_forward_backward():
    m = MiniInception(n_classes=20, seed=0)
    x = np.random.default_rng(3).normal(size=(2, 3, 16, 16))
    out = m(x)
    assert out.shape == (2, 20)
    cross_entropy(out, np.array([5, 10])).backward()
    assert all(p.grad is not None for p in m.parameters())


def test_tinybert_forward_backward():
    m = TinyBERT(vocab_size=32, max_seq=8, dim=16, n_heads=2, n_layers=1, seed=0)
    tokens = np.random.default_rng(4).integers(0, 32, size=(3, 8))
    s, e = m(tokens)
    assert s.shape == (3, 8)
    assert e.shape == (3, 8)
    qa_span_loss(s, e, np.array([0, 1, 2]), np.array([3, 4, 5])).backward()
    assert all(p.grad is not None for p in m.parameters())


def test_tinybert_validates_seq_len():
    m = TinyBERT(max_seq=8)
    with pytest.raises(ValueError):
        m(np.zeros((1, 16), dtype=int))
    with pytest.raises(ValueError):
        m(np.zeros(8, dtype=int))


def test_attention_shapes():
    attn = MultiHeadSelfAttention(16, 4, rng())
    x = Tensor(np.random.default_rng(0).normal(size=(2, 5, 16)))
    assert attn(x).shape == (2, 5, 16)


def test_attention_validates_dims():
    with pytest.raises(ValueError):
        MultiHeadSelfAttention(10, 3, rng())
    attn = MultiHeadSelfAttention(16, 4, rng())
    with pytest.raises(ValueError):
        attn(Tensor(np.zeros((1, 5, 8))))


def test_transformer_block_residual():
    blk = TransformerBlock(16, 2, rng())
    x = Tensor(np.random.default_rng(1).normal(size=(2, 4, 16)))
    assert blk(x).shape == (2, 4, 16)


def test_models_deterministic_by_seed():
    a, b = MiniVGG(seed=7), MiniVGG(seed=7)
    for (n1, p1), (n2, p2) in zip(a.named_parameters(), b.named_parameters()):
        assert n1 == n2
        assert np.array_equal(p1.data, p2.data)


# ------------------------------------------------------------- model cards
def test_all_five_paper_workloads_present():
    assert {
        "resnet50-cifar10",
        "vgg16-cifar10",
        "inceptionv3-cifar100",
        "resnet101-imagenet",
        "bertbase-squad",
        "resnet152-cifar10",  # §1 motivation experiment
    } <= set(MODEL_CARDS)


def test_card_paper_scale_numbers():
    vgg = get_card("vgg16-cifar10")
    assert vgg.paper_params == 138_357_544
    assert vgg.model_bytes == vgg.paper_params * 4
    bert = get_card("bertbase-squad")
    assert bert.batch_size == 12
    assert bert.metric == "f1"


def test_get_card_unknown():
    with pytest.raises(KeyError, match="vgg16-cifar10"):
        get_card("alexnet")


def test_synthetic_layer_sizes_sum_exactly():
    for card in MODEL_CARDS.values():
        sizes = synthetic_layer_sizes(card)
        assert sizes.sum() == card.paper_params
        assert len(sizes) == card.paper_layers
        assert (sizes > 0).all()


def test_synthetic_layer_sizes_vgg_head_dominates():
    sizes = synthetic_layer_sizes(get_card("vgg16-cifar10"))
    assert sizes[-3:].sum() / sizes.sum() > 0.7


def test_synthetic_layer_sizes_bert_embedding_large():
    sizes = synthetic_layer_sizes(get_card("bertbase-squad"))
    assert sizes[0] > 2 * sizes[1]


def test_mini_factories_build():
    for card in MODEL_CARDS.values():
        model = card.make_mini(seed=1)
        assert model.num_parameters() > 0
