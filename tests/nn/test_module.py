"""Unit tests for the Module registry machinery."""

import numpy as np
import pytest

from repro.nn import Linear, Module, Parameter, ReLU, Sequential


def rng():
    return np.random.default_rng(0)


class TwoLayer(Module):
    def __init__(self):
        super().__init__()
        self.fc1 = Linear(4, 8, rng())
        self.act = ReLU()
        self.fc2 = Linear(8, 2, rng())

    def forward(self, x):
        return self.fc2(self.act(self.fc1(x)))


def test_named_parameters_order_and_names():
    m = TwoLayer()
    names = [n for n, _ in m.named_parameters()]
    assert names == ["fc1.weight", "fc1.bias", "fc2.weight", "fc2.bias"]


def test_parameters_counts():
    m = TwoLayer()
    assert m.num_parameters() == 4 * 8 + 8 + 8 * 2 + 2


def test_leaf_layers_granularity():
    m = TwoLayer()
    layers = m.leaf_layers()
    assert [name for name, _ in layers] == ["fc1", "fc2"]


def test_leaf_layers_includes_direct_params():
    class WithDirect(Module):
        def __init__(self):
            super().__init__()
            self.scale = Parameter(np.ones(3))
            self.fc = Linear(3, 3, rng())

        def forward(self, x):
            return self.fc(x * self.scale)

    layers = WithDirect().leaf_layers()
    assert [name for name, _ in layers] == ["self", "fc"]


def test_zero_grad_clears_all():
    m = TwoLayer()
    from repro.autograd import Tensor

    out = m(Tensor(np.ones((2, 4))))
    out.sum().backward()
    assert any(p.grad is not None for p in m.parameters())
    m.zero_grad()
    assert all(p.grad is None for p in m.parameters())


def test_train_eval_recursive():
    m = TwoLayer()
    m.eval()
    assert not m.training
    assert not m.fc1.training
    m.train()
    assert m.fc2.training


def test_state_dict_roundtrip():
    m1, m2 = TwoLayer(), TwoLayer()
    m2.fc1.weight.data += 1.0
    m2.load_state_dict(m1.state_dict())
    assert np.allclose(m2.fc1.weight.data, m1.fc1.weight.data)


def test_state_dict_is_a_copy():
    m = TwoLayer()
    sd = m.state_dict()
    sd["fc1.weight"][...] = 99.0
    assert not np.allclose(m.fc1.weight.data, 99.0)


def test_load_state_dict_rejects_mismatched_keys():
    m = TwoLayer()
    with pytest.raises(KeyError):
        m.load_state_dict({"nope": np.zeros(1)})


def test_load_state_dict_rejects_bad_shape():
    m = TwoLayer()
    sd = m.state_dict()
    sd["fc1.weight"] = np.zeros((1, 1))
    with pytest.raises(ValueError):
        m.load_state_dict(sd)


def test_forward_not_implemented():
    class Empty(Module):
        pass

    with pytest.raises(NotImplementedError):
        Empty()(None)


def test_sequential_applies_in_order():
    from repro.autograd import Tensor

    seq = Sequential(Linear(2, 3, rng()), ReLU(), Linear(3, 1, rng()))
    out = seq(Tensor(np.ones((4, 2))))
    assert out.shape == (4, 1)
    assert len(seq) == 3
    assert isinstance(seq[1], ReLU)


def test_sequential_rejects_non_module():
    with pytest.raises(TypeError):
        Sequential(Linear(2, 2, rng()), "not a module")


def test_repr_contains_param_count():
    assert "params=" in repr(TwoLayer())
