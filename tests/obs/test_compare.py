"""Cross-run regression diffing: attribution correctness and verdicts."""

import pytest

from repro.core.osp import OSP
from repro.faults import BandwidthDip, FaultSchedule, StragglerSlowdown
from repro.harness.workloads import WorkloadConfig, timing_trainer
from repro.obs import compare_runs, load_summary, run_summary, save_summary
from repro.obs.compare import CAUSAL_PHASES, PHASES


def _cfg(**kw):
    defaults = dict(
        card_name="vgg16-cifar10",
        n_workers=4,
        n_epochs=3,
        iterations_per_epoch=6,
        sigma=0.1,
        seed=7,
    )
    defaults.update(kw)
    return WorkloadConfig(**defaults)


def _summary(faults=None):
    trainer = timing_trainer(_cfg(faults=faults), OSP())
    trainer.enable_sampling()
    result = trainer.run()
    return run_summary(result)


@pytest.fixture(scope="module")
def baseline():
    return _summary()


def test_summary_schema_and_round_trip(tmp_path, baseline):
    assert baseline["schema"] == "repro.run_summary/1"
    assert set(PHASES) == set(baseline["phases"])
    assert len(baseline["workers"]) == 4
    path = save_summary(baseline, tmp_path / "a.json")
    assert load_summary(path) == baseline
    bogus = tmp_path / "bogus.json"
    bogus.write_text('{"schema": "nope"}')
    with pytest.raises(ValueError, match="not a run summary"):
        load_summary(bogus)


def test_identical_runs_verdict_ok(baseline):
    rep = compare_runs(baseline, _summary())
    assert rep.verdict == "ok"
    assert abs(rep.delta) < 1e-9
    assert all(abs(d) < 1e-9 for _a, _b, d in rep.phases.values())


def test_straggler_attributed_to_compute_and_worker(baseline):
    # One worker's compute slows 3x for most of the run. The barrier
    # equalizes everyone's iteration times, so naive span accounting would
    # smear the delta across all workers' waits — attribution must still
    # point at compute, on worker 2.
    faults = FaultSchedule(
        events=(StragglerSlowdown(worker=2, start=2.0, duration=120.0, factor=3.0),)
    )
    rep = compare_runs(baseline, _summary(faults))
    assert rep.verdict == "regression"
    assert rep.pct > 0.05
    assert rep.dominant_phase == "compute"
    assert rep.dominant_worker == 2
    # The straggler's own active-time delta dwarfs every other worker's.
    deltas = {w: d for w, (_a, _b, d) in rep.workers.items()}
    assert deltas[2] > 2 * max(abs(d) for w, d in deltas.items() if w != 2)


def test_bandwidth_dip_attributed_to_rs(baseline):
    # A cluster-wide dip slows the blocking RS transfers on every worker.
    faults = FaultSchedule(
        events=(BandwidthDip(start=2.0, duration=120.0, factor=0.25),)
    )
    rep = compare_runs(baseline, _summary(faults))
    assert rep.verdict == "regression"
    assert rep.dominant_phase == "rs"


def test_improvement_is_symmetric(baseline):
    faults = FaultSchedule(
        events=(StragglerSlowdown(worker=2, start=2.0, duration=120.0, factor=3.0),)
    )
    slow = _summary(faults)
    rep = compare_runs(slow, baseline)
    assert rep.verdict == "improvement"
    assert rep.pct < -0.05
    assert rep.dominant_phase == "compute"
    assert rep.dominant_worker == 2


def test_threshold_gates_verdict(baseline):
    slow = dict(baseline, wall_time=baseline["wall_time"] * 1.04)
    assert compare_runs(baseline, slow, max_slowdown=0.05).verdict == "ok"
    assert compare_runs(baseline, slow, max_slowdown=0.02).verdict == "regression"


def test_render_marks_dominants(baseline):
    faults = FaultSchedule(
        events=(StragglerSlowdown(worker=2, start=2.0, duration=120.0, factor=3.0),)
    )
    rep = compare_runs(baseline, _summary(faults))
    text = rep.render()
    assert "REGRESSION" in text
    assert "<- dominant" in text
    doc = rep.as_dict()
    assert doc["dominant_phase"] == "compute"
    assert doc["dominant_worker"] == 2
    assert set(doc["phases"]) == set(PHASES)
    assert set(CAUSAL_PHASES) < set(PHASES)
