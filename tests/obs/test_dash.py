"""Dashboard rendering: self-contained HTML, fault shading, exports."""

import xml.etree.ElementTree as ET
import re

import pytest

from repro.core.osp import OSP
from repro.faults import BandwidthDip, FaultSchedule, StragglerSlowdown
from repro.harness.workloads import WorkloadConfig, timing_trainer
from repro.obs import export_csv, export_prometheus, render_dashboard
from repro.obs.health import health_report


def _cfg(**kw):
    defaults = dict(
        card_name="vgg16-cifar10",
        n_workers=4,
        n_epochs=3,
        iterations_per_epoch=6,
        sigma=0.1,
        seed=7,
    )
    defaults.update(kw)
    return WorkloadConfig(**defaults)


@pytest.fixture(scope="module")
def faulted_run():
    schedule = FaultSchedule(
        events=(
            StragglerSlowdown(worker=2, start=5.0, duration=40.0, factor=3.0),
            BandwidthDip(start=60.0, duration=15.0, factor=0.4),
        )
    )
    trainer = timing_trainer(_cfg(faults=schedule), OSP())
    trainer.enable_sampling()
    result = trainer.run()
    return trainer, result


def test_dashboard_is_self_contained(faulted_run):
    _trainer, result = faulted_run
    html = render_dashboard(result, title="test run")
    assert html.lower().startswith("<!doctype html>")
    # No network dependencies of any kind: no external URLs, no imports.
    for needle in ("http://", "https://", "@import", "url("):
        assert needle not in html, f"external reference {needle!r} in dashboard"
    assert "<script src" not in html
    assert "<link" not in html


def test_dashboard_svgs_parse_and_shade_faults(faulted_run):
    _trainer, result = faulted_run
    html = render_dashboard(result)
    svgs = re.findall(r"<svg[^>]*>.*?</svg>", html, flags=re.S)
    assert len(svgs) >= 6, "expected charts for worker health, gauges, links"
    shaded = 0
    for svg in svgs:
        # Inline SVG carries no xmlns (HTML parsing supplies it), so
        # ElementTree sees unnamespaced tags.
        root = ET.fromstring(svg)  # must be well-formed XML
        for title in root.iter("title"):
            if "straggler" in (title.text or "") or "bandwidth" in (title.text or ""):
                shaded += 1
    assert shaded > 0, "fault windows not shaded in any chart"


def test_dashboard_shows_worker_health(faulted_run):
    _trainer, result = faulted_run
    html = render_dashboard(result)
    report = health_report(result)
    assert report.stragglers == [2]
    # Every worker appears in the health table; the straggler is flagged.
    for w in range(4):
        assert f"worker {w}" in html
    assert "straggler" in html.lower()


def test_dashboard_requires_sampler():
    trainer = timing_trainer(_cfg(n_epochs=2, iterations_per_epoch=4), OSP())
    result = trainer.run()
    with pytest.raises(ValueError, match="sampl"):
        render_dashboard(result)


def test_csv_export_long_format(faulted_run):
    _trainer, result = faulted_run
    csv = export_csv(result.sampler)
    lines = csv.strip().splitlines()
    assert lines[0] == "time,track,value"
    assert len(lines) > 100
    t, track, v = lines[1].split(",")
    float(t), float(v)  # parse
    assert track


def test_prometheus_export_labels_workers_and_links(faulted_run):
    _trainer, result = faulted_run
    prom = export_prometheus(result.sampler)
    assert "# TYPE" in prom
    assert re.search(r'repro_osp_worker_compute_time\{worker="2"\} ', prom)
    assert re.search(r'repro_timeseries_link_utilization\{link="up:0"\} ', prom)
    # Exposition format: every non-comment line is `name{labels} value`.
    for line in prom.strip().splitlines():
        if line.startswith("#"):
            continue
        assert re.match(r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? \S+$', line), line
