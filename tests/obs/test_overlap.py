"""Overlap-report math + the paper's hidden-sync claim, quantified."""

import pytest

from repro.cluster import ClusterSpec, DistributedTrainer, TimingEngine, TrainingPlan
from repro.core import OSP
from repro.hardware import NoJitter
from repro.nn.models import get_card
from repro.obs import read_trace, write_unified_trace
from repro.obs.overlap import (
    OverlapReport,
    _overlap_seconds,
    overlap_report_from_recorder,
    overlap_report_from_run,
    overlap_report_from_trace,
)
from repro.sync import ASP, BSP

pytestmark = pytest.mark.tier1


def run(sync, workers=3, epochs=4, ipe=4):
    spec = ClusterSpec(n_workers=workers, jitter=NoJitter())
    plan = TrainingPlan(n_epochs=epochs, iterations_per_epoch=ipe)
    engine = TimingEngine(
        get_card("resnet50-cifar10"), spec, total_iterations=epochs * ipe
    )
    trainer = DistributedTrainer(spec, plan, engine, sync)
    trainer.enable_tracing()
    return trainer, trainer.run()


# -- interval math -------------------------------------------------------------
def test_overlap_seconds():
    intervals = [(0.0, 1.0), (2.0, 3.0)]
    assert _overlap_seconds(intervals, 0.5, 2.5) == pytest.approx(1.0)
    assert _overlap_seconds(intervals, 1.0, 2.0) == 0.0
    assert _overlap_seconds(intervals, -5.0, 10.0) == pytest.approx(2.0)


def test_empty_report_defaults():
    report = OverlapReport()
    assert report.hidden_sync_ratio == 0.0
    assert report.to_dict()["hidden_sync_ratio"] == 0.0
    assert "Overlap report" in report.render()


# -- the paper's claim ---------------------------------------------------------
def test_osp_hides_sync_bsp_and_asp_do_not():
    _t, osp_res = run(OSP(fixed_budget_fraction=0.5))
    osp = overlap_report_from_run(osp_res)
    assert osp.hidden_sync_ratio > 0.1
    assert osp.phase_bytes["ics-push"][1] > 0  # ICS bytes overlapped

    for baseline in (BSP(), ASP()):
        _t, res = run(baseline)
        report = overlap_report_from_run(res)
        baseline_phases = {
            p: h for p, (_b, h) in report.phase_bytes.items()
        }
        assert report.hidden_sync_ratio == pytest.approx(0.0), baseline_phases


def test_report_attribution_totals():
    _t, res = run(OSP(fixed_budget_fraction=0.5))
    report = overlap_report_from_run(res)
    assert report.n_iterations == res.recorder.total_iterations
    assert report.bst.count == report.n_iterations
    assert report.bst.mean() == pytest.approx(res.recorder.mean_bst())
    # phase bytes sum to the total
    total = sum(b for b, _h in report.phase_bytes.values())
    assert total == pytest.approx(report.total_sync_bytes)
    hidden = sum(h for _b, h in report.phase_bytes.values())
    assert hidden == pytest.approx(report.hidden_bytes)
    # per-layer traffic covers both stages for an adaptive OSP run
    assert report.layer_traffic["rs"] and report.layer_traffic["ics"]
    # BST decomposition names real phases
    assert "rs_push" in report.phase_time
    assert "ics_push" in report.phase_time


def test_render_and_to_dict_complete():
    _t, res = run(OSP(fixed_budget_fraction=0.5), epochs=2)
    report = overlap_report_from_run(res)
    text = report.render()
    for needle in ("hidden-sync ratio", "BST decomposition", "rs_push", "ICS"):
        assert needle in text
    d = report.to_dict()
    assert set(d) >= {
        "sync", "hidden_sync_ratio", "phase_bytes", "bst", "phase_time",
        "layer_traffic", "counters",
    }
    assert d["bst"]["count"] == report.n_iterations


# -- trace-file parity ---------------------------------------------------------
def test_report_from_trace_matches_report_from_run(tmp_path):
    trainer, res = run(OSP(fixed_budget_fraction=0.5))
    from_run = overlap_report_from_run(res)

    path = tmp_path / "trace.json"
    write_unified_trace(
        path,
        tracer=res.tracer,
        flow_records=trainer.network.records,
        recorder=res.recorder,
        sync_name=res.sync_name,
    )
    from_trace = overlap_report_from_trace(read_trace(path))

    assert from_trace.sync_name == from_run.sync_name
    assert from_trace.n_flows == from_run.n_flows
    assert from_trace.n_iterations == from_run.n_iterations
    assert from_trace.total_sync_bytes == pytest.approx(from_run.total_sync_bytes)
    # microsecond quantisation in the trace file: ratios agree to ~1e-3
    assert from_trace.hidden_sync_ratio == pytest.approx(
        from_run.hidden_sync_ratio, abs=1e-3
    )
    assert from_trace.layer_traffic == from_run.layer_traffic
    assert from_trace.counters == from_run.counters


def test_report_from_recorder_is_flowless_but_exact():
    _t, res = run(BSP(), epochs=2)
    report = overlap_report_from_recorder(res.recorder, sync_name="bsp")
    assert report.sync_name == "bsp"
    assert report.n_iterations == res.recorder.total_iterations
    assert report.bst.mean() == pytest.approx(res.recorder.mean_bst())
    assert report.hidden_sync_ratio == 0.0  # no flow records available
