"""Lint: every counter/gauge/histogram name used in src/ is registered.

The registry (repro.obs.registry) is the contract between producers
(sync models, fault injector, network) and consumers (benches, reports,
dashboards). This test greps the source tree so an unregistered name
fails tier-1 instead of silently creating a counter nobody reads.
"""

import re
from pathlib import Path

from repro.obs.registry import (
    ALL_NAMES,
    COUNTERS,
    COUNTER_TEMPLATES,
    GAUGES,
    HISTOGRAMS,
    TRACKS,
    is_registered_counter,
    is_registered_track,
    pattern_matches_registered,
    track_pattern_matches_registered,
)

SRC = Path(__file__).resolve().parents[2] / "src"

#: .incr("name") / .incr(f"name.{expr}") — first argument must be a string
#: literal for the lint to apply (dynamic passthroughs like export.py's
#: re-load loop only replay names that were linted at the original site).
_INCR = re.compile(r"""\.incr\(\s*(f?)(['"])([^'"]+)\2""")
_GAUGE = re.compile(r"""\.(?:gauge|gauge_delta)\(\s*(f?)(['"])([^'"]+)\2""")
_OBSERVE = re.compile(r"""\.observe\(\s*(f?)(['"])([^'"]+)\2""")
#: Any string literal naming a sampled time-series track. The sampler
#: raises at runtime on unregistered names; this sweep catches producer
#: *and* consumer sites (probes, health, dashboard lookups) statically,
#: including ones a given test run never executes.
_TRACK_LITERAL = re.compile(
    r"""(f?)(['"])((?:timeseries|osp\.worker|multijob)\.[^'"]+)\2"""
)


def _call_sites(regex):
    found = []
    for path in sorted(SRC.rglob("*.py")):
        for m in regex.finditer(path.read_text()):
            found.append((path.relative_to(SRC), bool(m.group(1)), m.group(3)))
    return found


def test_lint_sees_the_known_call_sites():
    names = {name for _p, _f, name in _call_sites(_INCR)}
    assert "osp.deadline_miss" in names
    assert "faults.{ev.kind}" in names  # the f-string site in the injector


def test_every_incr_call_site_uses_a_registered_counter():
    sites = _call_sites(_INCR)
    assert sites, "lint found no .incr( call sites — regex rot?"
    for path, is_fstring, name in sites:
        if is_fstring:
            assert pattern_matches_registered(name), (
                f"{path}: counter template {name!r} matches no registered name"
            )
        else:
            assert is_registered_counter(name), (
                f"{path}: counter {name!r} not in repro.obs.registry.COUNTERS"
            )


def test_every_gauge_call_site_uses_a_registered_gauge():
    for path, is_fstring, name in _call_sites(_GAUGE):
        if is_fstring:
            assert pattern_matches_registered(name, GAUGES), (
                f"{path}: gauge template {name!r} matches no registered name"
            )
        else:
            assert name in GAUGES, (
                f"{path}: gauge {name!r} not in repro.obs.registry.GAUGES"
            )


def test_every_histogram_call_site_is_registered():
    sites = [s for s in _call_sites(_OBSERVE) if "." in s[2]]
    for path, _is_fstring, name in sites:
        assert name in HISTOGRAMS, (
            f"{path}: histogram {name!r} not in repro.obs.registry.HISTOGRAMS"
        )


def test_every_track_literal_is_registered():
    # Literals ending in '.' are startswith()-style prefixes, not names;
    # the multijob namespace holds counters too — those sites are linted
    # by the .incr sweep above, not the track sweep.
    sites = [
        s
        for s in _call_sites(_TRACK_LITERAL)
        if not s[2].endswith(".") and not is_registered_counter(s[2])
    ]
    assert sites, "lint found no time-series track literals — regex rot?"
    names = {name for _p, _f, name in sites}
    assert "timeseries.net.inflight_bytes" in names  # the NetworkProbe site
    assert any(n.startswith("osp.worker.") for n in names)
    assert any(n.startswith("multijob.") for n in names)  # the MultiJobProbe site
    for path, _is_fstring, name in sites:
        assert track_pattern_matches_registered(name), (
            f"{path}: time-series track {name!r} matches no registered "
            "TRACKS template or gauge"
        )


def test_registry_namespaces_are_well_formed():
    for name in ALL_NAMES | COUNTER_TEMPLATES:
        prefix = name.split(".", 1)[0]
        assert prefix in {
            "osp",
            "faults",
            "obs",
            "ckpt",
            "elastic",
            "check",
            "netsim",
            "multijob",
        }, name
    for name in TRACKS:
        prefix = name.split(".", 1)[0]
        assert prefix in {"timeseries", "osp", "multijob"}, name
        assert "{" not in prefix


def test_pattern_matching_semantics():
    assert pattern_matches_registered("faults.{ev.kind}")
    assert not pattern_matches_registered("bogus.{x}")
    assert pattern_matches_registered("osp.deadline_miss")
    # templated counters: concrete instantiations and f-string producers
    assert is_registered_counter("netsim.job_bytes.osp")
    assert is_registered_counter("multijob.job_bytes")
    assert not is_registered_counter("netsim.job_bytes.a.b")
    assert pattern_matches_registered("netsim.job_bytes.{job}")
    assert not pattern_matches_registered("netsim.job_seconds.{job}")


def test_track_matching_semantics():
    # Concrete instantiations: placeholders bind one dot-free segment
    # (link names contain ':' but never '.').
    assert is_registered_track("osp.worker.3.compute_time")
    assert is_registered_track("timeseries.link.up:3.utilization")
    assert is_registered_track("osp.inflight_ics_bytes")  # gauge mirror
    assert not is_registered_track("osp.worker.3.made_up")
    assert not is_registered_track("osp.worker.a.b.compute_time")
    # Templates: producer style, consumer style with wildcard suffix.
    assert track_pattern_matches_registered("osp.worker.{w}.staleness")
    assert track_pattern_matches_registered("osp.worker.{w}.{suffix}")
    assert track_pattern_matches_registered("timeseries.link.{link.name}.queue_depth")
    assert not track_pattern_matches_registered("timeseries.cpu.{w}.load")
    assert not track_pattern_matches_registered("osp.worker.{w}.rss_bytes")
