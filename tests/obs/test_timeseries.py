"""Time-series plane: ring-buffer mechanics, registry enforcement, and the
non-perturbation property — sampled and unsampled runs are bit-identical
under both ``REPRO_FLAT_ARENA`` settings."""

import numpy as np
import pytest

from repro.check import capture_stream, first_divergence
from repro.check.replay import _scoped_env
from repro.core.osp import OSP
from repro.harness.workloads import (
    WorkloadConfig,
    make_numeric_dataset,
    numeric_trainer,
    timing_trainer,
)
from repro.obs.registry import is_registered_track
from repro.obs.timeseries import MetricSampler, Series
from repro.sync import BSP, DSSP, SSP


class _Clock:
    def __init__(self):
        self.now = 0.0
        self.tracer = None


# --------------------------------------------------------------------- Series
def test_series_ring_wrap_keeps_newest_in_order():
    s = Series("timeseries.net.active_flows", capacity=4)
    for i in range(7):
        s.append(float(i), float(i * 10))
    assert len(s) == 4
    assert s.dropped == 3
    assert s.times.tolist() == [3.0, 4.0, 5.0, 6.0]
    assert s.values.tolist() == [30.0, 40.0, 50.0, 60.0]
    assert s.last() == (6.0, 60.0)


def test_series_before_wrap_and_empty():
    s = Series("timeseries.net.active_flows", capacity=8)
    assert len(s) == 0
    assert s.last() is None
    s.append(1.0, 2.0)
    assert s.times.tolist() == [1.0]
    assert s.dropped == 0
    with pytest.raises(ValueError):
        Series("timeseries.net.active_flows", capacity=0)


# --------------------------------------------------------------- MetricSampler
def test_series_for_rejects_unregistered_tracks():
    sampler = MetricSampler(_Clock(), interval=1.0)
    with pytest.raises(ValueError, match="unregistered time-series track"):
        sampler.series_for("timeseries.made_up.signal")
    with pytest.raises(ValueError, match="unregistered"):
        sampler.series_for("osp.worker.0.not_a_signal")
    # Registered names (template instantiations included) are accepted.
    sampler.series_for("timeseries.net.inflight_bytes")
    sampler.series_for("timeseries.link.up:3.utilization")
    sampler.series_for("osp.worker.2.compute_time")
    sampler.series_for("osp.inflight_ics_bytes")


def test_on_advance_samples_once_per_crossing():
    clock = _Clock()
    sampler = MetricSampler(clock, interval=1.0)
    seen = []
    sampler.add_probe(lambda now: [("timeseries.net.active_flows", now)])
    for t in (0.0, 0.4, 0.9, 1.0, 3.7, 3.8, 4.05):
        clock.now = t
        sampler.on_advance(t)
    s = sampler.series["timeseries.net.active_flows"]
    # Edges at 0, 1, 2, 3, 4 — the 3.7 event covers the 2.0 and 3.0 edges
    # with ONE sample (no catch-up storm), then 4.05 crosses the 4.0 edge.
    assert s.times.tolist() == [0.0, 1.0, 3.7, 4.05]
    assert sampler.samples_taken == 4


def test_sampler_rejects_bad_interval():
    with pytest.raises(ValueError):
        MetricSampler(_Clock(), interval=0.0)


# -------------------------------------------------------- registry coverage
def _cfg(**kw):
    defaults = dict(
        card_name="vgg16-cifar10",
        n_workers=4,
        n_epochs=3,
        iterations_per_epoch=6,
        sigma=0.1,
        seed=7,
    )
    defaults.update(kw)
    return WorkloadConfig(**defaults)


def test_every_sampled_track_is_registered():
    trainer = timing_trainer(_cfg(), OSP())
    sampler = trainer.enable_sampling()
    trainer.run()
    assert sampler.samples_taken > 0
    assert sampler.series, "sampler collected nothing"
    for name in sampler.series:
        assert is_registered_track(name), f"unregistered sampled track {name}"
    # The OSP health tracks must actually be present, not just permitted.
    for w in range(4):
        assert f"osp.worker.{w}.compute_time" in sampler.series
        assert f"osp.worker.{w}.ics_backlog_bytes" in sampler.series
    assert "timeseries.net.inflight_bytes" in sampler.series
    assert "timeseries.link.up:0.utilization" in sampler.series


@pytest.mark.parametrize("sync_cls", [BSP, SSP, DSSP])
def test_sampling_covers_every_sync_model(sync_cls):
    trainer = timing_trainer(_cfg(n_epochs=2, iterations_per_epoch=4), sync_cls())
    sampler = trainer.enable_sampling()
    trainer.run()
    for name in sampler.series:
        assert is_registered_track(name), f"unregistered sampled track {name}"
    assert "osp.worker.0.staleness" in sampler.series


# ------------------------------------------------------- non-perturbation
@pytest.mark.parametrize("arena", ["0", "1"])
def test_sampling_is_bit_identical_numeric(arena):
    cfg = WorkloadConfig(
        card_name="resnet50-cifar10",
        n_workers=3,
        n_epochs=2,
        iterations_per_epoch=4,
        sigma=0.1,
        seed=13,
    )
    data = make_numeric_dataset(cfg.card, n_samples=120, seed=cfg.seed)

    def run(sampled: bool):
        with _scoped_env("REPRO_FLAT_ARENA", arena):
            trainer = numeric_trainer(cfg, OSP(), data=data)
            if sampled:
                trainer.enable_sampling()
            result = trainer.run()
            return trainer, result

    t_plain, r_plain = run(sampled=False)
    t_sampled, r_sampled = run(sampled=True)
    assert r_sampled.sampler is not None
    assert r_sampled.sampler.samples_taken > 0
    # The full normalized event stream — every iteration float, counter,
    # the final-parameter SHA-256, the wall time — must be bit-identical.
    diff = first_divergence(
        capture_stream(t_plain, r_plain), capture_stream(t_sampled, r_sampled)
    )
    assert diff is None, f"sampling perturbed the run at event {diff}"


def test_sampling_is_bit_identical_timing():
    def run(sampled: bool):
        trainer = timing_trainer(_cfg(), OSP())
        if sampled:
            trainer.enable_sampling()
        result = trainer.run()
        return trainer, result

    t_plain, r_plain = run(sampled=False)
    t_sampled, r_sampled = run(sampled=True)
    assert first_divergence(
        capture_stream(t_plain, r_plain), capture_stream(t_sampled, r_sampled)
    ) is None
    # And identical again on a repeat sampled run (sampling is itself
    # deterministic, so dashboards are reproducible artifacts).
    t2, r2 = run(sampled=True)
    assert np.array_equal(
        r2.sampler.series["timeseries.net.inflight_bytes"].values,
        r_sampled.sampler.series["timeseries.net.inflight_bytes"].values,
    )
