"""Unit tests for the span tracer core (repro.obs.tracer)."""

import pytest

from repro.obs.tracer import NULL_TRACER, Histogram, NullTracer, Span, Tracer
from repro.simcore.environment import Environment


def make_tracer():
    env = Environment()
    tracer = Tracer(env)
    env.tracer = tracer
    return env, tracer


# -- spans -------------------------------------------------------------------
def test_begin_end_records_interval():
    env, tracer = make_tracer()
    span = tracer.begin("compute", "worker 0", worker=0, iteration=3)

    def step():
        yield env.timeout(2.5)

    env.process(step())
    env.run()
    tracer.end(span, loss=1.25)
    assert span.start == 0.0
    assert span.end == 2.5
    assert span.duration == 2.5
    assert span.worker == 0 and span.iteration == 3
    assert span.attrs["loss"] == 1.25


def test_end_twice_raises():
    _env, tracer = make_tracer()
    span = tracer.begin("x", "a")
    tracer.end(span)
    with pytest.raises(RuntimeError, match="already ended"):
        tracer.end(span)


def test_nesting_within_one_context():
    _env, tracer = make_tracer()
    outer = tracer.begin("iteration", "worker 0")
    inner = tracer.begin("compute", "worker 0")
    assert inner.parent == outer.sid
    tracer.end(inner)
    tracer.end(outer)
    assert outer.parent is None


def test_interleaved_processes_do_not_cross_parent():
    """Two workers yielding between begin/end must each nest under their
    own iteration span, not the other process's innermost span."""
    env, tracer = make_tracer()
    inners: dict[int, Span] = {}
    outers: dict[int, Span] = {}

    def worker(w, delay):
        outers[w] = tracer.begin("iteration", f"worker {w}", worker=w)
        yield env.timeout(delay)
        inners[w] = tracer.begin("compute", f"worker {w}", worker=w)
        yield env.timeout(1.0)
        tracer.end(inners[w])
        tracer.end(outers[w])

    env.process(worker(0, 0.5))
    env.process(worker(1, 0.25))
    env.run()
    for w in (0, 1):
        assert inners[w].parent == outers[w].sid
    assert not tracer.open_spans()


def test_span_context_manager():
    _env, tracer = make_tracer()
    with tracer.span("lgp_correction", "worker 1", eq=6) as s:
        assert s.end is None
    assert s.end is not None
    assert s.attrs["eq"] == 6


def test_explicit_parent_overrides_stack():
    _env, tracer = make_tracer()
    a = tracer.begin("a", "x")
    b = tracer.begin("b", "x")
    c = tracer.begin("c", "x", parent=a)
    assert c.parent == a.sid
    assert b.parent == a.sid


def test_spans_named_view():
    _env, tracer = make_tracer()
    tracer.end(tracer.begin("rs_push", "w"))
    tracer.end(tracer.begin("rs_pull", "w"))
    tracer.end(tracer.begin("rs_push", "w"))
    assert len(tracer.spans_named("rs_push")) == 2
    assert len(tracer.spans_named("rs_push", "rs_pull")) == 3


# -- counters / histograms / traffic -----------------------------------------
def test_gauge_and_delta_track_running_value():
    env, tracer = make_tracer()
    tracer.gauge("osp.sgu_budget", 100.0)
    tracer.gauge_delta("osp.sgu_budget", 50.0)
    tracer.gauge_delta("osp.sgu_budget", -25.0)
    assert tracer.gauge_value("osp.sgu_budget") == 125.0
    samples = tracer.counters["osp.sgu_budget"]
    assert [v for _t, v in samples] == [100.0, 150.0, 125.0]
    assert all(t == env.now for t, _v in samples)


def test_gauge_delta_starts_at_zero():
    _env, tracer = make_tracer()
    tracer.gauge_delta("obs.net.active_flows", 1)
    assert tracer.gauge_value("obs.net.active_flows") == 1.0
    assert tracer.gauge_value("never.sampled") == 0.0


def test_observe_builds_histograms():
    _env, tracer = make_tracer()
    for v in (1.0, 2.0, 3.0):
        tracer.observe("obs.bst", v)
    hist = tracer.histograms["obs.bst"]
    assert hist.count == 3
    assert hist.mean() == pytest.approx(2.0)


def test_traffic_accounting():
    _env, tracer = make_tracer()
    tracer.add_traffic("rs", "layer0", 100.0)
    tracer.add_traffic("rs", "layer0", 50.0)
    tracer.add_traffic("ics", "layer1", 10.0)
    assert tracer.traffic[("rs", "layer0")] == 150.0
    assert tracer.stage_bytes("rs") == 150.0
    assert tracer.stage_bytes("ics") == 10.0


def test_instants_record_time_and_attrs():
    _env, tracer = make_tracer()
    inst = tracer.instant("faults.link_flap", actor="faults", track="faults", n=2)
    assert inst.time == 0.0
    assert inst.attrs == {"n": 2}
    assert tracer.instants == [inst]


# -- Histogram ----------------------------------------------------------------
def test_histogram_summary_keys_and_empty():
    h = Histogram("bst")
    empty = h.summary()
    assert set(empty) == {"count", "mean", "p50", "p90", "p99", "max"}
    assert empty["count"] == 0.0 and empty["max"] == 0.0
    for v in range(1, 101):
        h.observe(float(v))
    s = h.summary()
    assert s["count"] == 100.0
    assert s["p50"] == pytest.approx(50.5)
    assert s["max"] == 100.0
    assert h.percentile(0) == 1.0


def test_histogram_rejects_bad_percentile():
    with pytest.raises(ValueError):
        Histogram().percentile(101)


# -- NullTracer ---------------------------------------------------------------
def test_null_tracer_is_falsy_and_inert():
    assert not NULL_TRACER
    assert not NullTracer()
    span = NULL_TRACER.begin("x", "y")
    NULL_TRACER.end(span)  # must not raise, even repeatedly
    NULL_TRACER.end(span)
    with NULL_TRACER.span("x", "y") as s:
        assert s is span
    NULL_TRACER.instant("e")
    NULL_TRACER.gauge("g", 1.0)
    NULL_TRACER.gauge_delta("g", 1.0)
    NULL_TRACER.observe("h", 1.0)
    NULL_TRACER.add_traffic("rs", "l", 1.0)


def test_real_tracer_is_truthy():
    _env, tracer = make_tracer()
    assert tracer
