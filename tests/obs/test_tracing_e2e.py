"""End-to-end tracing: real traced runs, trace files, zero perturbation."""

import pytest

from repro.cluster import ClusterSpec, DistributedTrainer, TimingEngine, TrainingPlan
from repro.core import OSP
from repro.faults import BandwidthDip, FaultSchedule, StragglerSlowdown
from repro.hardware import NoJitter
from repro.nn.models import get_card
from repro.obs import read_trace, write_unified_trace
from repro.sync import BSP

pytestmark = pytest.mark.tier1


def make_trainer(sync, workers=3, epochs=4, ipe=4, faults=None):
    spec = ClusterSpec(n_workers=workers, jitter=NoJitter(), faults=faults)
    plan = TrainingPlan(n_epochs=epochs, iterations_per_epoch=ipe)
    engine = TimingEngine(
        get_card("resnet50-cifar10"), spec, total_iterations=epochs * ipe
    )
    return DistributedTrainer(spec, plan, engine, sync)


def traced_run(sync, **kwargs):
    trainer = make_trainer(sync, **kwargs)
    tracer = trainer.enable_tracing()
    res = trainer.run()
    assert res.tracer is tracer
    return trainer, res, tracer


# -- span coverage -------------------------------------------------------------
def test_traced_osp_covers_workers_and_ps():
    _trainer, res, tracer = traced_run(OSP(fixed_budget_fraction=0.5))
    worker_actors = {s.actor for s in tracer.spans if s.track == "workers"}
    assert len(worker_actors) >= 3  # ≥2 workers required; we run 3
    assert {s.name for s in tracer.spans if s.track == "ps"} >= {
        "ps_apply", "pgp_compute"
    }
    names = {s.name for s in tracer.spans}
    for required in (
        "iteration", "compute", "rs_push", "rs_barrier_wait", "rs_pull",
        "ics_push", "ics_pull",
    ):
        assert required in names, required
    assert len(tracer.spans_named("iteration")) == res.recorder.total_iterations
    assert not tracer.open_spans()


def test_traced_spans_nest_iteration_compute():
    _trainer, _res, tracer = traced_run(BSP(), workers=2, epochs=2, ipe=2)
    iterations = {s.sid: s for s in tracer.spans_named("iteration")}
    computes = tracer.spans_named("compute")
    assert computes
    for c in computes:
        parent = iterations[c.parent]
        assert parent.worker == c.worker
        assert parent.start <= c.start and c.end <= parent.end


def test_bst_histogram_matches_recorder():
    _trainer, res, tracer = traced_run(BSP(), workers=2, epochs=2, ipe=2)
    hist = tracer.histograms["obs.bst"]
    assert hist.count == res.recorder.total_iterations
    assert hist.mean() == pytest.approx(res.recorder.mean_bst())


def test_gauges_sampled():
    _trainer, _res, tracer = traced_run(OSP(fixed_budget_fraction=0.5))
    for name in (
        "osp.sgu_budget", "osp.quorum_size", "osp.inflight_ics_bytes",
        "obs.net.inflight_bytes", "obs.net.active_flows", "obs.ps.version",
    ):
        assert tracer.counters.get(name), name
    # in-flight ICS bytes drain back to zero at run end
    assert tracer.gauge_value("osp.inflight_ics_bytes") == 0.0
    assert tracer.gauge_value("obs.net.active_flows") == 0.0


def test_fault_events_become_instants():
    faults = FaultSchedule(
        events=[
            BandwidthDip(start=1.0, duration=2.0, factor=0.5),
            StragglerSlowdown(worker=0, start=0.5, duration=2.0, factor=2.0),
        ]
    )
    _trainer, _res, tracer = traced_run(BSP(), faults=faults)
    instant_names = {i.name for i in tracer.instants}
    assert "faults.bandwidth_dip" in instant_names
    assert "faults.straggler" in instant_names
    window_names = {s.name for s in tracer.spans if s.track == "faults"}
    assert {"faults.bandwidth_dip", "faults.straggler"} <= window_names


# -- zero perturbation ---------------------------------------------------------
def _fingerprint(res):
    return (
        res.wall_time,
        res.iteration_end_time,
        res.recorder.counters,
        [
            (r.worker, r.iteration, r.start_time, r.compute_time, r.sync_time)
            for r in res.recorder.iterations
        ],
    )


@pytest.mark.parametrize("sync_factory", [BSP, lambda: OSP(fixed_budget_fraction=0.5)])
def test_tracing_does_not_perturb_virtual_time(sync_factory):
    plain = make_trainer(sync_factory()).run()
    traced_trainer = make_trainer(sync_factory())
    traced_trainer.enable_tracing()
    traced = traced_trainer.run()
    assert _fingerprint(traced) == _fingerprint(plain)


def test_untraced_run_attaches_no_tracer():
    res = make_trainer(BSP(), workers=2, epochs=1, ipe=2).run()
    assert res.tracer is None


# -- unified trace file --------------------------------------------------------
def test_unified_trace_schema(tmp_path):
    trainer, res, tracer = traced_run(OSP(fixed_budget_fraction=0.5))
    path = tmp_path / "trace.json"
    n = write_unified_trace(
        path,
        tracer=tracer,
        flow_records=trainer.network.records,
        recorder=res.recorder,
        sync_name=res.sync_name,
    )
    payload = read_trace(path)
    events = payload["traceEvents"]
    assert len(events) == n
    for ev in events:
        assert ev["ph"] in {"X", "C", "i"}
        assert isinstance(ev["ts"], float) and ev["ts"] >= 0.0
        assert "pid" in ev and "tid" in ev and "name" in ev
        if ev["ph"] == "X":
            assert ev["dur"] >= 1.0  # min 1us so Perfetto renders it
    # every stream is present
    phases = {ev["ph"] for ev in events}
    assert phases == {"X", "C", "i"}
    pids = {ev["pid"] for ev in events}
    assert {"workers", "ics", "ps", "network", "counters"} <= pids
    # events are time-sorted
    ts = [ev["ts"] for ev in events]
    assert ts == sorted(ts)
    # machine-readable extras for `repro report`
    other = payload["otherData"]
    assert other["sync"] == res.sync_name
    assert "rs" in other["traffic"] and "ics" in other["traffic"]
