"""Unit tests for SGD and LR schedulers."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn import Linear, cross_entropy
from repro.nn.models import MLP
from repro.optim import SGD, CosineLR, StepLR, WarmupLR


def rng(seed=0):
    return np.random.default_rng(seed)


def make_model():
    return MLP([4, 8, 2], seed=0)


def test_sgd_plain_update_matches_formula():
    m = Linear(2, 1, rng(), bias=False)

    class Wrapper:
        pass

    opt = SGD(m, lr=0.5)
    w0 = m.weight.data.copy()
    grads = {"weight": np.ones_like(w0)}
    opt.step_with_grads(grads)
    assert np.allclose(m.weight.data, w0 - 0.5)


def test_sgd_step_uses_tape_grads():
    m = make_model()
    opt = SGD(m, lr=0.1)
    x = np.random.default_rng(1).normal(size=(8, 4))
    y = np.random.default_rng(2).integers(0, 2, size=8)
    before = m.state_dict()
    loss = cross_entropy(m(x), y)
    loss.backward()
    opt.step()
    after = m.state_dict()
    assert any(not np.allclose(before[k], after[k]) for k in before)


def test_sgd_step_without_grads_raises():
    opt = SGD(make_model(), lr=0.1)
    with pytest.raises(RuntimeError):
        opt.step()


def test_sgd_momentum_accelerates_constant_gradient():
    m = Linear(1, 1, rng(), bias=False)
    opt = SGD(m, lr=1.0, momentum=0.9)
    g = {"weight": np.array([[1.0]])}
    w0 = m.weight.data.item()
    opt.step_with_grads(g)
    first = w0 - m.weight.data.item()
    opt.step_with_grads(g)
    second = w0 - first - m.weight.data.item()
    assert second > first  # velocity accumulated


def test_sgd_nesterov_differs_from_plain_momentum():
    def run(nesterov):
        m = Linear(1, 1, rng(0), bias=False)
        opt = SGD(m, lr=0.1, momentum=0.9, nesterov=nesterov)
        for _ in range(3):
            opt.step_with_grads({"weight": np.array([[1.0]])})
        return m.weight.data.item()

    assert run(True) != run(False)


def test_sgd_weight_decay_shrinks_weights():
    m = Linear(1, 1, rng(), bias=False)
    m.weight.data[...] = 10.0
    opt = SGD(m, lr=0.1, weight_decay=0.1)
    opt.step_with_grads({"weight": np.zeros((1, 1))})
    assert m.weight.data.item() < 10.0


def test_sgd_partial_update_leaves_other_params():
    m = make_model()
    opt = SGD(m, lr=0.1)
    names = [n for n, _ in m.named_parameters()]
    target = names[0]
    before = m.state_dict()
    opt.step_with_grads({target: np.ones(before[target].shape)})
    after = m.state_dict()
    assert not np.allclose(before[target], after[target])
    for other in names[1:]:
        assert np.allclose(before[other], after[other])


def test_sgd_rejects_unknown_or_misshaped():
    opt = SGD(make_model(), lr=0.1)
    with pytest.raises(KeyError):
        opt.step_with_grads({"ghost": np.zeros(1)})
    name = next(iter(dict(make_model().named_parameters())))
    with pytest.raises(ValueError):
        opt.step_with_grads({name: np.zeros((1, 1, 1))})


def test_sgd_validation():
    m = make_model()
    with pytest.raises(ValueError):
        SGD(m, lr=0)
    with pytest.raises(ValueError):
        SGD(m, lr=0.1, momentum=1.0)
    with pytest.raises(ValueError):
        SGD(m, lr=0.1, weight_decay=-1)
    with pytest.raises(ValueError):
        SGD(m, lr=0.1, nesterov=True)


def test_gradient_dict_copies():
    m = make_model()
    x = np.zeros((2, 4))
    cross_entropy(m(x), np.array([0, 1])).backward()
    opt = SGD(m, lr=0.1)
    gd = opt.gradient_dict()
    first = next(iter(gd))
    gd[first][...] = 99.0
    assert not np.allclose(dict(m.named_parameters())[first].grad, 99.0)


def test_sgd_training_reduces_loss():
    """End-to-end sanity: a few SGD epochs reduce loss on a separable task."""
    m = MLP([2, 16, 2], seed=0)
    opt = SGD(m, lr=0.1, momentum=0.9)
    g = np.random.default_rng(0)
    x = g.normal(size=(128, 2))
    y = (x[:, 0] > 0).astype(np.int64)
    losses = []
    for _ in range(30):
        opt.zero_grad()
        loss = cross_entropy(m(x), y)
        loss.backward()
        opt.step()
        losses.append(loss.item())
    assert losses[-1] < 0.3 * losses[0]


# -------------------------------------------------------------- schedulers
def test_steplr_halves_every_10_epochs_paper_schedule():
    opt = SGD(make_model(), lr=0.1)
    sched = StepLR(opt, step_epochs=10, gamma=0.5)
    for epoch in range(25):
        sched.epoch_end(epoch)
    # After 25 epochs: floor(25/10)=2 decays
    assert opt.lr == pytest.approx(0.1 * 0.25)


def test_steplr_no_decay_before_boundary():
    opt = SGD(make_model(), lr=0.1)
    sched = StepLR(opt, step_epochs=10, gamma=0.5)
    sched.epoch_end(0)
    assert opt.lr == pytest.approx(0.1)
    sched.epoch_end(9)  # 10th epoch done
    assert opt.lr == pytest.approx(0.05)


def test_steplr_validation():
    opt = SGD(make_model(), lr=0.1)
    with pytest.raises(ValueError):
        StepLR(opt, step_epochs=0)
    with pytest.raises(ValueError):
        StepLR(opt, gamma=0)


def test_warmup_ramps_then_delegates():
    opt = SGD(make_model(), lr=1.0)
    after = StepLR(opt, step_epochs=1, gamma=0.5)
    sched = WarmupLR(opt, warmup_epochs=4, after=after)
    assert opt.lr == pytest.approx(0.25)
    sched.epoch_end(0)
    assert opt.lr == pytest.approx(0.5)
    for e in range(1, 6):
        sched.epoch_end(e)
    assert opt.lr < 1.0


def test_warmup_without_after_restores_base():
    opt = SGD(make_model(), lr=0.8)
    sched = WarmupLR(opt, warmup_epochs=2)
    sched.epoch_end(0)
    sched.epoch_end(1)
    assert opt.lr == pytest.approx(0.8)


class _SpySchedule:
    """Records the epochs a WarmupLR hands to its wrapped schedule."""

    def __init__(self, optimizer):
        self.optimizer = optimizer
        self.calls = []

    def epoch_end(self, epoch):
        self.calls.append(epoch)
        return self.optimizer.lr


def test_warmup_hands_wrapped_schedule_zero_indexed_epochs():
    # Regression: the first post-warmup call used to hand epoch −1 to the
    # wrapped schedule. The hand-off must start at 0 and never go negative.
    opt = SGD(make_model(), lr=1.0)
    spy = _SpySchedule(opt)
    sched = WarmupLR(opt, warmup_epochs=2, after=spy)
    for e in range(5):
        sched.epoch_end(e)
    assert spy.calls == [0, 1, 2]
    assert min(spy.calls) >= 0


def test_warmup_then_steplr_value_sequence():
    opt = SGD(make_model(), lr=1.0)
    after = StepLR(opt, step_epochs=1, gamma=0.5)
    sched = WarmupLR(opt, warmup_epochs=2, after=after)
    lrs = [sched.epoch_end(e) for e in range(5)]
    # warm-up completes at full LR, then StepLR halves every epoch starting
    # from its own epoch 0 — exactly the values an unwrapped StepLR yields.
    assert lrs == pytest.approx([1.0, 1.0, 0.5, 0.25, 0.125])


def test_warmup_then_cosine_value_sequence():
    opt = SGD(make_model(), lr=1.0)
    after = CosineLR(opt, total_epochs=4, min_lr=0.0)
    sched = WarmupLR(opt, warmup_epochs=2, after=after)
    lrs = [sched.epoch_end(e) for e in range(6)]

    ref_opt = SGD(make_model(), lr=1.0)
    ref = CosineLR(ref_opt, total_epochs=4, min_lr=0.0)
    expected = [ref.epoch_end(e) for e in range(4)]
    assert lrs[0] == pytest.approx(1.0)  # end of warm-up ramp
    assert lrs[1] == pytest.approx(1.0)  # full LR before the wrapped schedule
    assert lrs[2:] == pytest.approx(expected)
    assert lrs[-1] == pytest.approx(0.0)


def test_cosine_decays_to_min():
    opt = SGD(make_model(), lr=1.0)
    sched = CosineLR(opt, total_epochs=10, min_lr=0.01)
    for e in range(10):
        sched.epoch_end(e)
    assert opt.lr == pytest.approx(0.01)


def test_cosine_monotone_decreasing():
    opt = SGD(make_model(), lr=1.0)
    sched = CosineLR(opt, total_epochs=20)
    lrs = [sched.epoch_end(e) for e in range(20)]
    assert all(a >= b for a, b in zip(lrs, lrs[1:]))
