"""Property-based tests for SGD mechanics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Linear
from repro.optim import SGD


def make_layer(seed=0):
    return Linear(2, 2, np.random.default_rng(seed), bias=False)


@given(
    st.floats(min_value=1e-3, max_value=1.0),
    st.floats(min_value=0.0, max_value=0.95),
    st.integers(min_value=1, max_value=12),
    st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=60, deadline=None)
def test_property_momentum_matches_closed_form(lr, momentum, steps, seed):
    """For a constant gradient g, SGD-with-momentum after k steps equals
    w0 − lr·g·Σ_{i=1..k} (1 − m^i)/(1 − m)."""
    layer = make_layer(seed % 100)
    opt = SGD(layer, lr=lr, momentum=momentum)
    g = np.random.default_rng(seed).normal(size=(2, 2))
    w0 = layer.weight.data.copy()
    for _ in range(steps):
        opt.step_with_grads({"weight": g})
    if momentum == 0:
        total = steps
    else:
        total = sum((1 - momentum**i) / (1 - momentum) for i in range(1, steps + 1))
    np.testing.assert_allclose(layer.weight.data, w0 - lr * g * total, rtol=1e-9)


@given(
    st.floats(min_value=1e-3, max_value=0.5),
    st.integers(min_value=1, max_value=8),
    st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=40, deadline=None)
def test_property_weight_decay_is_l2_shrinkage(lr, steps, seed):
    """With zero gradient, weight decay shrinks weights geometrically."""
    wd = 0.1
    layer = make_layer(seed % 100)
    opt = SGD(layer, lr=lr, weight_decay=wd)
    w0 = layer.weight.data.copy()
    for _ in range(steps):
        opt.step_with_grads({"weight": np.zeros((2, 2))})
    np.testing.assert_allclose(
        layer.weight.data, w0 * (1 - lr * wd) ** steps, rtol=1e-9
    )


@given(st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=30, deadline=None)
def test_property_update_linear_in_gradient(seed):
    """Plain SGD: step(a·g) ≡ a · step(g) in parameter delta."""
    rng = np.random.default_rng(seed)
    g = rng.normal(size=(2, 2))
    a = float(rng.uniform(0.5, 3.0))

    def delta(grad):
        layer = make_layer(1)
        opt = SGD(layer, lr=0.1)
        w0 = layer.weight.data.copy()
        opt.step_with_grads({"weight": grad})
        return layer.weight.data - w0

    np.testing.assert_allclose(delta(a * g), a * delta(g), rtol=1e-9)


@given(st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=30, deadline=None)
def test_property_partial_updates_commute_with_full(seed):
    """Applying grads per-parameter in any order equals one combined call
    (no momentum): the mechanism OSP's split updates rely on."""
    rng = np.random.default_rng(seed)
    layer_a = Linear(2, 2, np.random.default_rng(0))
    layer_b = Linear(2, 2, np.random.default_rng(0))
    grads = {
        "weight": rng.normal(size=(2, 2)),
        "bias": rng.normal(size=(2,)),
    }
    opt_a = SGD(layer_a, lr=0.2)
    opt_a.step_with_grads(grads)
    opt_b = SGD(layer_b, lr=0.2)
    opt_b.step_with_grads({"bias": grads["bias"]})
    opt_b.step_with_grads({"weight": grads["weight"]})
    np.testing.assert_allclose(layer_a.weight.data, layer_b.weight.data)
    np.testing.assert_allclose(layer_a.bias.data, layer_b.bias.data)
