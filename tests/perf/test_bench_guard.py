"""Tier-1 guard over the committed perf baseline.

Fails when ``BENCH_hotpath.json`` is missing, missing a schema field, or
records a guarded speedup below 1.0 — i.e. when the flat-arena hot path
has regressed to (or below) the dict-path baseline it replaced.
"""

import copy
import json
from pathlib import Path

from repro.perf.hotpath import (
    BENCH_SCHEMA,
    GUARDED_SPEEDUPS,
    REQUIRED_FIELDS,
    get_path,
    validate_bench,
)

BENCH_PATH = Path(__file__).resolve().parents[2] / "BENCH_hotpath.json"


def _load():
    assert BENCH_PATH.exists(), (
        f"{BENCH_PATH} missing — regenerate with `make perf-full` "
        "(or `python -m repro perf`)"
    )
    return json.loads(BENCH_PATH.read_text())


def test_committed_bench_has_all_schema_fields():
    data = _load()
    assert data["schema"] == BENCH_SCHEMA
    for field in REQUIRED_FIELDS:
        get_path(data, field)  # KeyError -> test failure names the field


def test_committed_bench_speedups_not_regressed():
    problems = validate_bench(_load(), min_speedup=1.0)
    assert problems == []


def test_committed_bench_parity_flags_true():
    data = _load()
    assert data["end_to_end"]["numeric"]["identical"] is True
    assert data["sweep"]["identical"] is True
    assert data["end_to_end"]["timing"]["virtual_match"] is True


def test_validate_bench_flags_missing_field_and_regression():
    data = _load()
    broken = copy.deepcopy(data)
    del broken["micro"]["ps_apply"]["speedup"]
    assert any("micro.ps_apply.speedup" in p for p in validate_bench(broken))

    slow = copy.deepcopy(data)
    slow["micro"]["pgp"]["speedup"] = 0.5
    assert any("regression" in p for p in validate_bench(slow))

    wrong = copy.deepcopy(data)
    wrong["schema"] = "bogus/v0"
    assert any("schema mismatch" in p for p in validate_bench(wrong))

    assert GUARDED_SPEEDUPS  # the guard list itself must not be empty
