"""Tier-1 guard over the committed co-tenancy baseline.

Fails when ``BENCH_multijob.json`` is missing, missing a schema field,
records the solo-job-through-multijob path as not bit-identical to the
direct ``DistributedTrainer`` run, or shows the OSP tenant's RS-stage p90
isolation factor (priorities off / on, with a background BULK tenant on
the same hosts) below the guarded minimum — i.e. when the co-tenancy
layer has either stopped protecting the latency-sensitive tenant or
(worse) started perturbing single-job runs.

The guarded ratio is a quotient of two *virtual-time* percentiles, so the
committed number is deterministic for the committed config — a drop means
the scheduler's or the placement layer's behavior changed.
"""

import copy
import json
from pathlib import Path

from repro.perf.hotpath import get_path
from repro.perf.multijob import (
    BENCH_SCHEMA,
    GUARDED_SPEEDUPS,
    MIN_IMPROVEMENT,
    REQUIRED_FIELDS,
    validate_bench,
)

BENCH_PATH = Path(__file__).resolve().parents[2] / "BENCH_multijob.json"


def _load():
    assert BENCH_PATH.exists(), (
        f"{BENCH_PATH} missing — regenerate with `make bench-multijob-full` "
        "(or `python -m repro perf-multijob`)"
    )
    return json.loads(BENCH_PATH.read_text())


def test_committed_bench_has_all_schema_fields():
    data = _load()
    assert data["schema"] == BENCH_SCHEMA
    for field in REQUIRED_FIELDS:
        get_path(data, field)  # KeyError -> test failure names the field


def test_committed_bench_valid_and_isolation_holds():
    problems = validate_bench(_load(), min_improvement=MIN_IMPROVEMENT)
    assert problems == []


def test_committed_bench_single_job_fingerprint_identical():
    identity = _load()["identity"]
    assert identity["identical"] is True
    assert identity["direct_digest"] == identity["multijob_digest"]


def test_committed_bench_shows_real_contention():
    """The contended run must actually co-locate the tenants: the OSP job
    saw contended traffic, the fabrics overlapped, and with priorities on
    the scheduler preempted the background tenant at least once."""
    cont = _load()["contended"]
    assert cont["off"]["osp_contended_share"] > 0
    assert cont["off"]["pair_overlap_s"] > 0
    assert cont["on"]["preemptions"] > 0
    # both tenants moved real traffic over the shared fabric
    assert cont["off"]["osp_job_bytes"] > 0
    assert cont["off"]["bulk_job_bytes"] > 0


def test_validate_bench_flags_problems():
    data = _load()
    broken = copy.deepcopy(data)
    del broken["contended"]["improvement"]
    assert any("contended.improvement" in p for p in validate_bench(broken))

    slow = copy.deepcopy(data)
    slow["contended"]["improvement"] = 1.01
    assert any("regression" in p for p in validate_bench(slow))

    diverged = copy.deepcopy(data)
    diverged["identity"]["identical"] = False
    assert any("identity.identical" in p for p in validate_bench(diverged))

    forged = copy.deepcopy(data)
    forged["identity"]["multijob_digest"] = "0" * 64
    assert any("digests differ" in p for p in validate_bench(forged))

    wrong = copy.deepcopy(data)
    wrong["schema"] = "bogus/v0"
    assert any("schema mismatch" in p for p in validate_bench(wrong))

    assert GUARDED_SPEEDUPS  # the guard list itself must not be empty
