"""Tier-1 guard over the committed priority-scheduling baseline.

Fails when ``BENCH_netprio.json`` is missing, missing a schema field,
records the inert default-class path as not bit-identical across the
scheduler on/kill-switch modes, or shows the contended RS-stage p90 wait
improvement below the guarded minimum — i.e. when priority scheduling has
either stopped helping OSP under contention or (worse) started perturbing
default-class traffic.

Unlike the host-time benches, the guarded ratio is a quotient of two
*virtual-time* percentiles, so the committed number is deterministic for
the committed config — a drop means the scheduler's behavior changed.
"""

import copy
import json
from pathlib import Path

from repro.perf.hotpath import get_path
from repro.perf.netprio import (
    BENCH_SCHEMA,
    GUARDED_SPEEDUPS,
    MIN_IMPROVEMENT,
    REQUIRED_FIELDS,
    validate_bench,
)

BENCH_PATH = Path(__file__).resolve().parents[2] / "BENCH_netprio.json"


def _load():
    assert BENCH_PATH.exists(), (
        f"{BENCH_PATH} missing — regenerate with `make bench-prio` "
        "(or `python -m repro perf-prio`)"
    )
    return json.loads(BENCH_PATH.read_text())


def test_committed_bench_has_all_schema_fields():
    data = _load()
    assert data["schema"] == BENCH_SCHEMA
    for field in REQUIRED_FIELDS:
        get_path(data, field)  # KeyError -> test failure names the field


def test_committed_bench_valid_and_improvement_holds():
    problems = validate_bench(_load(), min_improvement=MIN_IMPROVEMENT)
    assert problems == []


def test_committed_bench_inert_path_identical():
    assert _load()["inert"]["identical"] is True


def test_committed_bench_shows_preemptions_and_class_traffic():
    """The contended run must actually exercise the scheduler: BULK
    tenants preempted at least once, HIGH and BULK bytes both nonzero."""
    on = _load()["contended"]["on"]
    assert on["preemptions"] > 0
    assert on["prio_bytes"]["high"] > 0
    assert on["prio_bytes"]["bulk"] > 0


def test_validate_bench_flags_problems():
    data = _load()
    broken = copy.deepcopy(data)
    del broken["contended"]["improvement"]
    assert any("contended.improvement" in p for p in validate_bench(broken))

    slow = copy.deepcopy(data)
    slow["contended"]["improvement"] = 1.01
    assert any("regression" in p for p in validate_bench(slow))

    diverged = copy.deepcopy(data)
    diverged["inert"]["identical"] = False
    assert any("inert.identical" in p for p in validate_bench(diverged))

    wrong = copy.deepcopy(data)
    wrong["schema"] = "bogus/v0"
    assert any("schema mismatch" in p for p in validate_bench(wrong))

    assert GUARDED_SPEEDUPS  # the guard list itself must not be empty
