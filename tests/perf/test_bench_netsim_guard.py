"""Tier-1 guard over the committed netsim scaling baseline.

Fails when ``BENCH_netsim.json`` is missing, missing a schema field,
records a sweep point that is not virtual-time identical across the legacy
and fast network-core paths, or shows the 64-worker host-time speedup
below the guarded minimum — i.e. when the scaled network core has either
regressed in speed or (worse) stopped being bit-identical to the
reference path.

The host-time bound is deliberately loose (a ratio of two runs on the
same host, not an absolute time), the same style as ``test_bench_guard``.
"""

import copy
import json
from pathlib import Path

from repro.perf.netsim_scale import (
    BENCH_SCHEMA,
    GUARDED_SPEEDUPS,
    MIN_SPEEDUP_64,
    REQUIRED_FIELDS,
    validate_bench,
)
from repro.perf.hotpath import get_path

BENCH_PATH = Path(__file__).resolve().parents[2] / "BENCH_netsim.json"


def _load():
    assert BENCH_PATH.exists(), (
        f"{BENCH_PATH} missing — regenerate with `make bench-net` "
        "(or `python -m repro perf-net`)"
    )
    return json.loads(BENCH_PATH.read_text())


def test_committed_bench_has_all_schema_fields():
    data = _load()
    assert data["schema"] == BENCH_SCHEMA
    for field in REQUIRED_FIELDS:
        get_path(data, field)  # KeyError -> test failure names the field


def test_committed_bench_valid_and_64_worker_speedup_holds():
    problems = validate_bench(_load(), min_speedup=MIN_SPEEDUP_64)
    assert problems == []


def test_committed_bench_identity_flags_true():
    data = _load()
    for n, entry in data["sweep"].items():
        assert entry["identical"] is True, f"sweep point {n} not identical"
    assert data["end_to_end"]["identical"] is True


def test_validate_bench_flags_problems():
    data = _load()
    broken = copy.deepcopy(data)
    del broken["sweep"]["64"]["speedup"]
    assert any("sweep.64.speedup" in p for p in validate_bench(broken))

    slow = copy.deepcopy(data)
    slow["sweep"]["64"]["speedup"] = 1.01
    assert any("regression" in p for p in validate_bench(slow))

    diverged = copy.deepcopy(data)
    diverged["sweep"]["32"]["identical"] = False
    assert any("parity violation" in p for p in validate_bench(diverged))

    diverged_e2e = copy.deepcopy(data)
    diverged_e2e["end_to_end"]["identical"] = False
    assert any(
        "end_to_end.identical" in p for p in validate_bench(diverged_e2e)
    )

    wrong = copy.deepcopy(data)
    wrong["schema"] = "bogus/v0"
    assert any("schema mismatch" in p for p in validate_bench(wrong))

    assert GUARDED_SPEEDUPS  # the guard list itself must not be empty
