"""Tests for the process-parallel sweep executor: parallel fan-out must
return exactly the sequential results, for any job count."""

import numpy as np
import pytest

from repro.core.osp import OSP
from repro.harness.stats import run_seeds
from repro.harness.sweep import sweep_bandwidth, sweep_jitter, sweep_workers
from repro.harness.workloads import WorkloadConfig, timing_trainer
from repro.perf.executor import default_jobs, parallel_map
from repro.sync import ASP, BSP


def test_parallel_map_serial_equivalence():
    tasks = list(range(7))
    serial = [t * t for t in tasks]
    for jobs in (1, 2, 3, None):
        assert parallel_map(lambda t: t * t, tasks, jobs=jobs) == serial


def test_parallel_map_preserves_order_with_closures():
    # lambdas/closures must work (fork inheritance, never pickled)
    offset = 100
    got = parallel_map(lambda t: t + offset, [3, 1, 2], jobs=2)
    assert got == [103, 101, 102]


def test_parallel_map_rejects_bad_jobs():
    with pytest.raises(ValueError):
        parallel_map(lambda t: t, [1, 2], jobs=0)


def test_default_jobs_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "3")
    assert default_jobs() == 3
    monkeypatch.delenv("REPRO_JOBS")
    assert default_jobs() >= 1


def test_parallel_map_worker_seeding_is_deterministic():
    # tasks that (incorrectly) draw from the global RNG still get a fixed
    # per-index seed, so results are reproducible run-to-run
    def draw(_t):
        return float(np.random.random())

    a = parallel_map(draw, [0, 1, 2], jobs=2, seed_base=7)
    b = parallel_map(draw, [0, 1, 2], jobs=2, seed_base=7)
    assert a == b


@pytest.mark.parametrize("jobs", [2, 3])
def test_sweep_bandwidth_parallel_equals_serial(jobs):
    factories = (BSP, OSP)
    bandwidths = [1e9, 4e9]
    kwargs = dict(epochs=4, ipe=4, n_workers=4, seed=1)
    serial = sweep_bandwidth(factories, bandwidths, jobs=1, **kwargs)
    parallel = sweep_bandwidth(factories, bandwidths, jobs=jobs, **kwargs)
    assert serial == parallel  # SweepPoint is a frozen dataclass: == is exact


def test_sweep_workers_and_jitter_parallel_equal_serial():
    factories = (ASP,)
    assert sweep_workers(factories, [2, 4], epochs=4, ipe=4, jobs=1) == sweep_workers(
        factories, [2, 4], epochs=4, ipe=4, jobs=2
    )
    assert sweep_jitter(factories, [0.1, 0.3], epochs=4, ipe=4, jobs=1) == sweep_jitter(
        factories, [0.1, 0.3], epochs=4, ipe=4, jobs=2
    )


def test_run_seeds_parallel_equals_serial():
    cfg = WorkloadConfig("resnet50-cifar10", n_workers=4, n_epochs=4, seed=0)

    def factory(seed):
        return timing_trainer(
            WorkloadConfig(cfg.card_name, n_workers=4, n_epochs=4, seed=seed), OSP()
        )

    serial = run_seeds(factory, [0, 1, 2], jobs=1)
    parallel = run_seeds(factory, [0, 1, 2], jobs=3)
    assert serial == parallel
