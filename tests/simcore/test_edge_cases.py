"""Edge-case tests for the simulation kernel."""

import pytest

from repro.simcore import (
    AllOf,
    AnyOf,
    Barrier,
    Environment,
    Interrupt,
    Resource,
    Store,
)


def test_condition_over_already_processed_children():
    env = Environment()
    t1 = env.timeout(1, value="a")
    env.run()  # t1 processed
    both = AllOf(env, [t1])
    assert both.triggered
    assert both.value == {t1: "a"}


def test_anyof_with_mixed_processed_and_pending():
    env = Environment()
    t1 = env.timeout(1)
    env.run()
    t2 = env.timeout(100)
    either = AnyOf(env, [t1, t2])
    assert either.triggered  # t1 already done


def test_interrupt_while_waiting_on_barrier():
    env = Environment()
    bar = Barrier(env, parties=2)
    caught = []

    def waiter(env):
        try:
            yield bar.wait()
        except Interrupt as i:
            caught.append(i.cause)

    def interrupter(env, victim):
        yield env.timeout(3)
        victim.interrupt(cause="abort-barrier")

    v = env.process(waiter(env))
    env.process(interrupter(env, v))
    env.run()
    assert caught == ["abort-barrier"]
    # The barrier still counts the arrival — documenting current semantics:
    assert bar.waiting == 1


def test_interrupt_while_holding_resource_releases_in_finally():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def holder(env):
        req = res.request()
        yield req
        try:
            yield env.timeout(100)
        except Interrupt:
            pass
        finally:
            res.release()
        order.append(("holder-out", env.now))

    def second(env):
        yield env.timeout(1)
        req = res.request()
        yield req
        order.append(("second-in", env.now))
        res.release()

    h = env.process(holder(env))

    def interrupter(env):
        yield env.timeout(5)
        h.interrupt()

    env.process(second(env))
    env.process(interrupter(env))
    env.run()
    assert ("second-in", 5) in order


def test_process_return_value_none_by_default():
    env = Environment()

    def proc(env):
        yield env.timeout(1)

    p = env.process(proc(env))
    env.run()
    assert p.value is None


def test_nested_process_chain_values():
    env = Environment()

    def leaf(env):
        yield env.timeout(1)
        return 1

    def mid(env):
        v = yield env.process(leaf(env))
        return v + 1

    def root(env):
        v = yield env.process(mid(env))
        return v + 1

    p = env.process(root(env))
    env.run()
    assert p.value == 3


def test_store_interleaved_producers_consumers():
    env = Environment()
    store = Store(env)
    consumed = []

    def producer(env, items, delay):
        for item in items:
            yield env.timeout(delay)
            store.put(item)

    def consumer(env, n):
        for _ in range(n):
            v = yield store.get()
            consumed.append((env.now, v))

    env.process(producer(env, ["a", "b"], delay=2))
    env.process(producer(env, ["x", "y"], delay=3))
    env.process(consumer(env, 4))
    env.run()
    assert [v for _t, v in consumed] == ["a", "x", "b", "y"]


def test_barrier_more_arrivals_than_parties_wraps_generations():
    env = Environment()
    bar = Barrier(env, parties=2)
    gens = []

    def party(env):
        g = yield bar.wait()
        gens.append(g)

    for _ in range(6):
        env.process(party(env))
    env.run()
    assert sorted(gens) == [0, 0, 1, 1, 2, 2]


def test_zero_delay_timeout_processes_in_fifo_order():
    env = Environment()
    order = []
    for i in range(5):
        t = env.timeout(0, value=i)
        t.callbacks.append(lambda e: order.append(e.value))
    env.run()
    assert order == [0, 1, 2, 3, 4]


def test_resource_request_inside_callback_is_safe():
    env = Environment()
    res = Resource(env, capacity=1)
    got = []

    def proc(env):
        req = res.request()
        yield req
        got.append(env.now)
        res.release()

    t = env.timeout(1)
    t.callbacks.append(lambda _e: env.process(proc(env)))
    env.run()
    assert got == [1]
