"""Unit tests for the Environment run loop and determinism guarantees."""

import pytest

from repro.simcore import Environment, SimulationError
from repro.simcore.priority import LOW, NORMAL, URGENT


def test_run_until_time_stops_clock_exactly():
    env = Environment()
    env.timeout(10)
    env.run(until=4.0)
    assert env.now == 4.0
    env.run(until=20.0)
    assert env.now == 20.0


def test_run_until_past_time_raises():
    env = Environment()
    env.run(until=5.0)
    with pytest.raises(ValueError):
        env.run(until=1.0)


def test_run_until_event_returns_value():
    env = Environment()

    def proc(env):
        yield env.timeout(2)
        return "result"

    p = env.process(proc(env))
    assert env.run(until=p) == "result"
    assert env.now == 2


def test_run_until_event_reraises_failure():
    env = Environment()

    def proc(env):
        yield env.timeout(1)
        raise KeyError("inner")

    p = env.process(proc(env))
    with pytest.raises(KeyError):
        env.run(until=p)


def test_run_until_untriggerable_event_raises():
    env = Environment()
    orphan = env.event()
    with pytest.raises(SimulationError):
        env.run(until=orphan)


def test_step_on_empty_queue_raises():
    env = Environment()
    with pytest.raises(SimulationError):
        env.step()


def test_peek_reports_next_event_time():
    env = Environment()
    assert env.peek() == float("inf")
    env.timeout(7)
    env.timeout(3)
    assert env.peek() == 3


def test_same_time_events_fifo_order():
    env = Environment()
    order = []
    for i in range(10):
        t = env.timeout(1, value=i)
        t.callbacks.append(lambda e: order.append(e.value))
    env.run()
    assert order == list(range(10))


def test_priority_beats_insertion_order():
    env = Environment()
    order = []
    lo = env.event()
    lo.callbacks.append(lambda e: order.append("low"))
    hi = env.event()
    hi.callbacks.append(lambda e: order.append("urgent"))
    nm = env.event()
    nm.callbacks.append(lambda e: order.append("normal"))
    lo.succeed(priority=LOW)
    nm.succeed(priority=NORMAL)
    hi.succeed(priority=URGENT)
    env.run()
    assert order == ["urgent", "normal", "low"]


def test_initial_time_offset():
    env = Environment(initial_time=100.0)
    env.timeout(5)
    env.run()
    assert env.now == 105.0


def test_schedule_negative_delay_rejected():
    env = Environment()
    ev = env.event()
    with pytest.raises(ValueError):
        env.schedule(ev, delay=-0.1)


def test_determinism_full_replay():
    """Two identical simulations produce identical event traces."""

    def build_and_trace():
        env = Environment()
        trace = []

        def worker(env, wid, delay):
            for i in range(5):
                yield env.timeout(delay)
                trace.append((env.now, wid, i))

        for wid, d in enumerate([1.0, 1.5, 1.0, 0.7]):
            env.process(worker(env, wid, d))
        env.run()
        return trace

    assert build_and_trace() == build_and_trace()
