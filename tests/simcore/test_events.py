"""Unit tests for simcore event primitives."""

import pytest

from repro.simcore import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    EventAlreadyTriggered,
    Timeout,
)


def test_event_starts_pending():
    env = Environment()
    ev = env.event()
    assert not ev.triggered
    assert not ev.processed
    with pytest.raises(RuntimeError):
        _ = ev.value
    with pytest.raises(RuntimeError):
        _ = ev.ok


def test_event_succeed_sets_value():
    env = Environment()
    ev = env.event()
    ev.succeed(42)
    assert ev.triggered
    assert ev.ok
    assert ev.value == 42


def test_event_double_trigger_raises():
    env = Environment()
    ev = env.event().succeed(1)
    with pytest.raises(EventAlreadyTriggered):
        ev.succeed(2)
    with pytest.raises(EventAlreadyTriggered):
        ev.fail(ValueError("x"))


def test_event_fail_requires_exception():
    env = Environment()
    ev = env.event()
    with pytest.raises(TypeError):
        ev.fail("not an exception")


def test_failed_event_unhandled_raises_on_step():
    env = Environment()
    env.event().fail(ValueError("boom"))
    with pytest.raises(ValueError, match="boom"):
        env.run()


def test_failed_event_defused_does_not_raise():
    env = Environment()
    ev = env.event()
    ev.defused = True
    ev.fail(ValueError("boom"))
    env.run()  # no exception


def test_timeout_advances_clock():
    env = Environment()
    env.timeout(3.5)
    env.run()
    assert env.now == 3.5


def test_timeout_negative_delay_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1.0)


def test_timeout_carries_value():
    env = Environment()
    t = env.timeout(1.0, value="payload")
    env.run()
    assert t.value == "payload"


def test_callbacks_fire_in_registration_order():
    env = Environment()
    order = []
    ev = env.event()
    ev.callbacks.append(lambda e: order.append("a"))
    ev.callbacks.append(lambda e: order.append("b"))
    ev.succeed()
    env.run()
    assert order == ["a", "b"]


def test_allof_collects_all_values():
    env = Environment()
    t1 = env.timeout(1, value="x")
    t2 = env.timeout(2, value="y")
    both = AllOf(env, [t1, t2])
    env.run()
    assert both.ok
    assert both.value == {t1: "x", t2: "y"}
    assert env.now == 2


def test_allof_empty_triggers_immediately():
    env = Environment()
    both = AllOf(env, [])
    assert both.triggered
    assert both.value == {}


def test_anyof_triggers_on_first():
    env = Environment()
    t1 = env.timeout(1, value="fast")
    t2 = env.timeout(10, value="slow")
    either = AnyOf(env, [t1, t2])

    done_at = []

    def watcher(env):
        yield either
        done_at.append(env.now)

    env.process(watcher(env))
    env.run()
    assert done_at == [1]
    assert t1 in either.value


def test_allof_propagates_failure():
    env = Environment()
    good = env.timeout(1)
    bad = env.event()
    both = AllOf(env, [good, bad])
    both.defused = True
    bad.fail(RuntimeError("child failed"))
    env.run()
    assert not both.ok
    assert isinstance(both.value, RuntimeError)


def test_condition_rejects_foreign_events():
    env1, env2 = Environment(), Environment()
    with pytest.raises(ValueError):
        AllOf(env1, [env2.event()])


def test_mixed_environment_isolation():
    env1, env2 = Environment(), Environment()
    env1.timeout(5)
    env2.timeout(7)
    env1.run()
    assert env1.now == 5
    assert env2.now == 0


def test_event_repr_states():
    env = Environment()
    ev = env.event()
    assert "pending" in repr(ev)
    ev.succeed()
    assert "triggered" in repr(ev)
    env.run()
    assert "processed" in repr(ev)


def test_timeout_isinstance_event():
    env = Environment()
    assert isinstance(env.timeout(0), Event)
    assert isinstance(env.timeout(0), Timeout)
