"""Unit tests for generator-based processes."""

import pytest

from repro.simcore import Environment, Interrupt


def test_process_runs_and_returns_value():
    env = Environment()

    def proc(env):
        yield env.timeout(1)
        yield env.timeout(2)
        return "final"

    p = env.process(proc(env))
    env.run()
    assert p.triggered and p.ok
    assert p.value == "final"
    assert env.now == 3


def test_process_receives_event_values():
    env = Environment()
    seen = []

    def proc(env):
        v = yield env.timeout(1, value="hello")
        seen.append(v)

    env.process(proc(env))
    env.run()
    assert seen == ["hello"]


def test_process_is_alive_lifecycle():
    env = Environment()

    def proc(env):
        yield env.timeout(5)

    p = env.process(proc(env))
    assert p.is_alive
    env.run(until=2.0)
    assert p.is_alive
    env.run()
    assert not p.is_alive


def test_process_exception_fails_process_event():
    env = Environment()

    def proc(env):
        yield env.timeout(1)
        raise ValueError("expected failure")

    p = env.process(proc(env))
    with pytest.raises(ValueError, match="expected failure"):
        env.run()
    assert p.triggered and not p.ok


def test_waiting_on_another_process():
    env = Environment()

    def child(env):
        yield env.timeout(3)
        return "child-result"

    def parent(env):
        result = yield env.process(child(env))
        return f"got:{result}"

    p = env.process(parent(env))
    env.run()
    assert p.value == "got:child-result"


def test_waiting_on_already_finished_process():
    env = Environment()

    def child(env):
        yield env.timeout(1)
        return 99

    def parent(env, child_proc):
        yield env.timeout(10)  # child long done
        v = yield child_proc
        return v

    c = env.process(child(env))
    p = env.process(parent(env, c))
    env.run()
    assert p.value == 99
    assert env.now == 10


def test_failed_child_process_throws_into_parent():
    env = Environment()

    def child(env):
        yield env.timeout(1)
        raise RuntimeError("child blew up")

    def parent(env):
        try:
            yield env.process(child(env))
        except RuntimeError as exc:
            return f"caught:{exc}"

    p = env.process(parent(env))
    env.run()
    assert p.value == "caught:child blew up"


def test_yield_non_event_fails_process():
    env = Environment()

    def proc(env):
        yield 42  # not an event

    p = env.process(proc(env))
    with pytest.raises(RuntimeError, match="non-event"):
        env.run()
    assert not p.ok


def test_interrupt_delivers_cause():
    env = Environment()
    log = []

    def sleeper(env):
        try:
            yield env.timeout(100)
        except Interrupt as i:
            log.append((env.now, i.cause))

    def interrupter(env, victim):
        yield env.timeout(5)
        victim.interrupt(cause="wake-up")

    v = env.process(sleeper(env))
    env.process(interrupter(env, v))
    env.run()
    assert log == [(5, "wake-up")]


def test_interrupt_finished_process_raises():
    env = Environment()

    def quick(env):
        yield env.timeout(1)

    p = env.process(quick(env))
    env.run()
    with pytest.raises(RuntimeError):
        p.interrupt()


def test_interrupted_process_can_continue():
    env = Environment()

    def sleeper(env):
        try:
            yield env.timeout(100)
        except Interrupt:
            pass
        yield env.timeout(2)
        return env.now

    def interrupter(env, victim):
        yield env.timeout(5)
        victim.interrupt()

    v = env.process(sleeper(env))
    env.process(interrupter(env, v))
    env.run()
    assert v.value == 7


def test_process_rejects_non_generator():
    env = Environment()
    with pytest.raises(TypeError):
        env.process(lambda: None)


def test_many_processes_interleave_deterministically():
    env = Environment()
    log = []

    def worker(env, wid):
        for step in range(3):
            yield env.timeout(1)
            log.append((env.now, wid, step))

    for wid in range(4):
        env.process(worker(env, wid))
    env.run()
    # At each time unit, workers run in creation order.
    assert log[:4] == [(1, 0, 0), (1, 1, 0), (1, 2, 0), (1, 3, 0)]
    assert len(log) == 12
