"""Unit tests for Resource, Store, and Barrier."""

import pytest

from repro.simcore import Barrier, Environment, Resource, Store


# ---------------------------------------------------------------- Resource
def test_resource_grants_up_to_capacity_immediately():
    env = Environment()
    res = Resource(env, capacity=2)
    r1, r2, r3 = res.request(), res.request(), res.request()
    assert r1.triggered and r2.triggered
    assert not r3.triggered
    assert res.in_use == 2
    assert res.queue_length == 1


def test_resource_release_wakes_fifo():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def user(env, uid, hold):
        req = res.request()
        yield req
        order.append(("acq", uid, env.now))
        yield env.timeout(hold)
        res.release()

    for uid in range(3):
        env.process(user(env, uid, hold=2))
    env.run()
    assert order == [("acq", 0, 0), ("acq", 1, 2), ("acq", 2, 4)]


def test_resource_release_without_request_raises():
    env = Environment()
    res = Resource(env)
    with pytest.raises(RuntimeError):
        res.release()


def test_resource_invalid_capacity():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_resource_serialization_matches_capacity():
    """With capacity c, at most c holders overlap at any virtual time."""
    env = Environment()
    res = Resource(env, capacity=3)
    active = [0]
    max_active = [0]

    def user(env):
        req = res.request()
        yield req
        active[0] += 1
        max_active[0] = max(max_active[0], active[0])
        yield env.timeout(1)
        active[0] -= 1
        res.release()

    for _ in range(10):
        env.process(user(env))
    env.run()
    assert max_active[0] == 3


# ---------------------------------------------------------------- Store
def test_store_put_then_get():
    env = Environment()
    store = Store(env)
    store.put("a")
    store.put("b")
    got = []

    def getter(env):
        got.append((yield store.get()))
        got.append((yield store.get()))

    env.process(getter(env))
    env.run()
    assert got == ["a", "b"]


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env)
    got = []

    def getter(env):
        v = yield store.get()
        got.append((env.now, v))

    def putter(env):
        yield env.timeout(4)
        store.put("late")

    env.process(getter(env))
    env.process(putter(env))
    env.run()
    assert got == [(4, "late")]


def test_store_len_counts_buffered_items():
    env = Environment()
    store = Store(env)
    assert len(store) == 0
    store.put(1)
    store.put(2)
    assert len(store) == 2


def test_store_multiple_getters_fifo():
    env = Environment()
    store = Store(env)
    got = []

    def getter(env, gid):
        v = yield store.get()
        got.append((gid, v))

    for gid in range(3):
        env.process(getter(env, gid))

    def putter(env):
        yield env.timeout(1)
        for item in "xyz":
            store.put(item)

    env.process(putter(env))
    env.run()
    assert got == [(0, "x"), (1, "y"), (2, "z")]


# ---------------------------------------------------------------- Barrier
def test_barrier_releases_all_at_last_arrival():
    env = Environment()
    bar = Barrier(env, parties=3)
    released = []

    def party(env, pid, arrive):
        yield env.timeout(arrive)
        gen = yield bar.wait()
        released.append((pid, env.now, gen))

    env.process(party(env, 0, 1))
    env.process(party(env, 1, 5))
    env.process(party(env, 2, 3))
    env.run()
    assert sorted(released) == [(0, 5, 0), (1, 5, 0), (2, 5, 0)]


def test_barrier_is_cyclic():
    env = Environment()
    bar = Barrier(env, parties=2)
    gens = []

    def party(env, delay):
        for _ in range(3):
            yield env.timeout(delay)
            gen = yield bar.wait()
            gens.append((env.now, gen))

    env.process(party(env, 1))
    env.process(party(env, 2))
    env.run()
    # Barrier trips at t=2 (gen 0), t=4 (gen 1), t=6 (gen 2); both parties each time.
    assert gens == [(2, 0), (2, 0), (4, 1), (4, 1), (6, 2), (6, 2)]
    assert bar.generation == 3


def test_barrier_single_party_never_blocks():
    env = Environment()
    bar = Barrier(env, parties=1)

    def solo(env):
        for _ in range(5):
            yield bar.wait()
            yield env.timeout(1)

    env.process(solo(env))
    env.run()
    assert env.now == 5


def test_barrier_waiting_counter():
    env = Environment()
    bar = Barrier(env, parties=3)
    bar.wait()
    bar.wait()
    assert bar.waiting == 2
    bar.wait()
    assert bar.waiting == 0


def test_barrier_invalid_parties():
    env = Environment()
    with pytest.raises(ValueError):
        Barrier(env, parties=0)


def test_barrier_models_bsp_straggler():
    """BSP semantics: iteration time = slowest worker (straggler)."""
    env = Environment()
    bar = Barrier(env, parties=4)
    iteration_ends = []

    def worker(env, compute_time):
        for _ in range(2):
            yield env.timeout(compute_time)
            yield bar.wait()
            iteration_ends.append(env.now)

    for ct in [1.0, 1.0, 1.0, 9.0]:  # one straggler
        env.process(worker(env, ct))
    env.run()
    assert set(iteration_ends) == {9.0, 18.0}
