"""Tests for the ``python -m repro`` CLI."""

import json

import pytest

from repro.cli import SYNC_FACTORIES, build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_cards_command(capsys):
    assert main(["cards"]) == 0
    out = capsys.readouterr().out
    for card in ("resnet50-cifar10", "bertbase-squad"):
        assert card in out


def test_figures_command(capsys):
    assert main(["figures"]) == 0
    out = capsys.readouterr().out
    assert "bench_fig6a_throughput" in out
    assert "bench_fig9_bct_colocated" in out


def test_run_timing_mode(capsys):
    code = main(
        [
            "run",
            "--workload",
            "resnet50-cifar10",
            "--sync",
            "bsp",
            "--mode",
            "timing",
            "--workers",
            "2",
            "--epochs",
            "2",
            "--iterations",
            "2",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "bsp" in out and "samples/s" in out


def test_run_json_output(capsys):
    main(
        [
            "run",
            "--sync",
            "osp",
            "--workers",
            "2",
            "--epochs",
            "2",
            "--iterations",
            "2",
            "--json",
        ]
    )
    payload = json.loads(capsys.readouterr().out)
    assert payload["sync"] == "osp"
    assert payload["throughput"] > 0
    assert len(payload["tta"]) == 2


def test_run_numeric_mode(capsys):
    code = main(
        [
            "run",
            "--mode",
            "numeric",
            "--sync",
            "bsp",
            "--workers",
            "2",
            "--epochs",
            "1",
            "--samples",
            "200",
            "--batch-size",
            "10",
        ]
    )
    assert code == 0
    assert "best metric" in capsys.readouterr().out


def test_run_rejects_unknown_sync():
    with pytest.raises(SystemExit):
        main(["run", "--sync", "nope"])


def test_compare_command(capsys):
    code = main(
        [
            "compare",
            "--workers",
            "2",
            "--epochs",
            "2",
            "--iterations",
            "2",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    for name in ("asp", "bsp", "r2sp", "osp"):
        assert name in out


def test_all_sync_factories_instantiate():
    for name, factory in SYNC_FACTORIES.items():
        model = factory()
        assert hasattr(model, "worker_process"), name


def test_run_json_includes_bst_percentiles_and_comm_share(capsys):
    main(
        ["run", "--sync", "bsp", "--workers", "2", "--epochs", "2",
         "--iterations", "2", "--json"]
    )
    payload = json.loads(capsys.readouterr().out)
    assert payload["bst_p50"] <= payload["bst_p90"] <= payload["bst_p99"]
    assert 0.0 < payload["communication_share"] < 1.0
    # A fault-free BSP run records only network-scheduler work counters.
    assert set(payload["counters"])
    assert all(k.startswith("netsim.") for k in payload["counters"])
    assert payload["counters"]["netsim.rerates"] > 0


def test_run_trace_then_report(tmp_path, capsys):
    trace = tmp_path / "trace.json"
    assert (
        main(
            ["run", "--sync", "osp", "--workers", "2", "--epochs", "6",
             "--iterations", "4", "--trace", str(trace)]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "trace events" in out
    payload = json.loads(trace.read_text())
    assert {"X", "C", "i"} <= {e["ph"] for e in payload["traceEvents"]}
    assert payload["otherData"]["sync"] == "osp"

    assert main(["report", str(trace)]) == 0
    report = capsys.readouterr().out
    assert "hidden-sync ratio" in report
    assert "BST decomposition" in report


def test_report_json_from_trace(tmp_path, capsys):
    trace = tmp_path / "trace.json"
    main(
        ["run", "--sync", "bsp", "--workers", "2", "--epochs", "2",
         "--iterations", "2", "--trace", str(trace)]
    )
    capsys.readouterr()
    assert main(["report", str(trace), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["sync"] == "bsp"
    # µs quantisation in the trace file leaves float dust; the in-memory
    # path (tests/obs/test_overlap.py) asserts exact zero.
    assert abs(payload["hidden_sync_ratio"]) < 1e-12
    assert payload["n_iterations"] == 8


def test_report_from_recorder_json(tmp_path, capsys):
    from repro.cluster import (
        ClusterSpec,
        DistributedTrainer,
        TimingEngine,
        TrainingPlan,
    )
    from repro.hardware import NoJitter
    from repro.metrics.export import save_recorder
    from repro.nn.models import get_card
    from repro.sync import BSP

    spec = ClusterSpec(n_workers=2, jitter=NoJitter())
    plan = TrainingPlan(n_epochs=1, iterations_per_epoch=2)
    engine = TimingEngine(get_card("resnet50-cifar10"), spec, total_iterations=2)
    res = DistributedTrainer(spec, plan, engine, BSP()).run()
    path = tmp_path / "recorder.json"
    save_recorder(res.recorder, path)

    assert main(["report", str(path)]) == 0
    out = capsys.readouterr().out
    assert "Batch synchronization time" in out


def _run_with_checkpoints(ckpt_dir, extra=()):
    return main(
        [
            "run",
            "--workload", "resnet50-cifar10",
            "--sync", "osp",
            "--mode", "timing",
            "--workers", "2",
            "--epochs", "4",
            "--iterations", "2",
            "--checkpoint-every", "2",
            "--checkpoint-dir", str(ckpt_dir),
            *extra,
        ]
    )


def test_run_checkpoint_then_inspect_round_trip(tmp_path, capsys):
    ckpt_dir = tmp_path / "ckpts"
    assert _run_with_checkpoints(ckpt_dir) == 0
    files = sorted(p.name for p in ckpt_dir.iterdir())
    assert files == ["ckpt-epoch0002.npz", "ckpt-epoch0004.npz"]
    capsys.readouterr()

    assert main(["ckpt", "inspect", str(ckpt_dir / "ckpt-epoch0002.npz"), "--json"]) == 0
    info = json.loads(capsys.readouterr().out)
    assert info["next_epoch"] == 2
    assert info["sync"].startswith("osp")
    assert info["counters"]["ckpt.save"] == 1

    # and the checkpoint actually resumes a run
    assert _run_with_checkpoints(
        tmp_path / "resumed",
        extra=["--resume", str(ckpt_dir / "ckpt-epoch0002.npz"), "--json"],
    ) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["counters"]["ckpt.restore"] == 1
    assert payload["counters"]["ckpt.save"] == 2  # 1 restored + 1 new


def test_ckpt_inspect_table_output(tmp_path, capsys):
    ckpt_dir = tmp_path / "ckpts"
    _run_with_checkpoints(ckpt_dir)
    capsys.readouterr()
    assert main(["ckpt", "inspect", str(ckpt_dir / "ckpt-epoch0002.npz")]) == 0
    out = capsys.readouterr().out
    assert "next_epoch" in out and "arrays" in out


def test_ckpt_inspect_refuses_version_mismatch(tmp_path, capsys):
    from repro.ckpt import load_checkpoint, write_checkpoint

    ckpt_dir = tmp_path / "ckpts"
    _run_with_checkpoints(ckpt_dir)
    capsys.readouterr()
    path = ckpt_dir / "ckpt-epoch0002.npz"
    ckpt = load_checkpoint(path)
    ckpt.meta["format_version"] = 99
    write_checkpoint(ckpt, path)

    assert main(["ckpt", "inspect", str(path)]) == 1
    err = capsys.readouterr().err
    assert "format version" in err
