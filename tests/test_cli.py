"""Tests for the ``python -m repro`` CLI."""

import json

import pytest

from repro.cli import SYNC_FACTORIES, build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_cards_command(capsys):
    assert main(["cards"]) == 0
    out = capsys.readouterr().out
    for card in ("resnet50-cifar10", "bertbase-squad"):
        assert card in out


def test_figures_command(capsys):
    assert main(["figures"]) == 0
    out = capsys.readouterr().out
    assert "bench_fig6a_throughput" in out
    assert "bench_fig9_bct_colocated" in out


def test_run_timing_mode(capsys):
    code = main(
        [
            "run",
            "--workload",
            "resnet50-cifar10",
            "--sync",
            "bsp",
            "--mode",
            "timing",
            "--workers",
            "2",
            "--epochs",
            "2",
            "--iterations",
            "2",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "bsp" in out and "samples/s" in out


def test_run_json_output(capsys):
    main(
        [
            "run",
            "--sync",
            "osp",
            "--workers",
            "2",
            "--epochs",
            "2",
            "--iterations",
            "2",
            "--json",
        ]
    )
    payload = json.loads(capsys.readouterr().out)
    assert payload["sync"] == "osp"
    assert payload["throughput"] > 0
    assert len(payload["tta"]) == 2


def test_run_numeric_mode(capsys):
    code = main(
        [
            "run",
            "--mode",
            "numeric",
            "--sync",
            "bsp",
            "--workers",
            "2",
            "--epochs",
            "1",
            "--samples",
            "200",
            "--batch-size",
            "10",
        ]
    )
    assert code == 0
    assert "best metric" in capsys.readouterr().out


def test_run_rejects_unknown_sync():
    with pytest.raises(SystemExit):
        main(["run", "--sync", "nope"])


def test_compare_command(capsys):
    code = main(
        [
            "compare",
            "--workers",
            "2",
            "--epochs",
            "2",
            "--iterations",
            "2",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    for name in ("asp", "bsp", "r2sp", "osp"):
        assert name in out


def test_all_sync_factories_instantiate():
    for name, factory in SYNC_FACTORIES.items():
        model = factory()
        assert hasattr(model, "worker_process"), name
