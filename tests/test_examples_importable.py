"""Smoke tests: every example script parses, imports, and exposes main().

Full example runs take minutes; CI-level protection against import rot and
API drift only needs the import. (Examples are executed end-to-end in the
benchmark/docs workflow.)
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(p.stem for p in EXAMPLES_DIR.glob("*.py"))


def _load(name: str):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_examples_present():
    assert len(EXAMPLES) >= 3  # deliverable: at least three runnable examples
    assert "quickstart" in EXAMPLES


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_imports_and_has_main(name):
    module = _load(name)
    assert callable(getattr(module, "main", None)), f"{name} lacks main()"


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_has_module_docstring(name):
    module = _load(name)
    assert module.__doc__ and "Run:" in module.__doc__
