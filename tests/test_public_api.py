"""Public API surface tests: imports, __all__ consistency, docstrings."""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.simcore",
    "repro.netsim",
    "repro.hardware",
    "repro.autograd",
    "repro.nn",
    "repro.nn.models",
    "repro.optim",
    "repro.data",
    "repro.compression",
    "repro.sync",
    "repro.core",
    "repro.cluster",
    "repro.metrics",
    "repro.obs",
    "repro.harness",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_package_imports(name):
    importlib.import_module(name)


@pytest.mark.parametrize("name", PACKAGES)
def test_all_entries_resolve(name):
    mod = importlib.import_module(name)
    assert hasattr(mod, "__all__"), f"{name} has no __all__"
    for symbol in mod.__all__:
        assert hasattr(mod, symbol), f"{name}.{symbol} missing"


@pytest.mark.parametrize("name", PACKAGES)
def test_package_docstrings(name):
    mod = importlib.import_module(name)
    assert mod.__doc__ and len(mod.__doc__.strip()) > 20, name


@pytest.mark.parametrize("name", PACKAGES)
def test_public_classes_and_functions_documented(name):
    mod = importlib.import_module(name)
    for symbol in mod.__all__:
        obj = getattr(mod, symbol)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            assert obj.__doc__, f"{name}.{symbol} lacks a docstring"


def test_version_string():
    import repro

    parts = repro.__version__.split(".")
    assert len(parts) == 3
    assert all(p.isdigit() for p in parts)


def test_sync_models_have_unique_names():
    from repro.compression import TopK
    from repro.core import OSP, ColocatedOSP
    from repro.sync import (
        ASP,
        BSP,
        CompressedBSP,
        DSSP,
        R2SP,
        SSP,
        ShardedBSP,
        SyncSwitch,
    )

    models = [
        ASP(),
        BSP(),
        SSP(),
        DSSP(),
        R2SP(),
        R2SP(duplex=True),
        SyncSwitch(),
        ShardedBSP(),
        CompressedBSP(TopK(0.1)),
        OSP(),
        OSP(force="bsp"),
        OSP(force="asp"),
        OSP(fixed_budget_fraction=0.5),
        ColocatedOSP(),
    ]
    names = [m.name for m in models]
    assert len(set(names)) == len(names)
